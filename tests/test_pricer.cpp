// The session API: Pricer::supports must agree with the per-item Status of
// price_many for EVERY Model x Right x Style x Engine combination, session
// results must be bit-identical to the legacy free functions, and the
// greeks / implied-vol layers must reproduce their free-function
// counterparts while reusing the session's kernel caches.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/greeks.hpp"
#include "amopt/pricing/implied_vol.hpp"
#include "amopt/pricing/pricer.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

constexpr Model kModels[] = {Model::bopm, Model::topm, Model::bsm};
constexpr Right kRights[] = {Right::call, Right::put};
constexpr Style kStyles[] = {Style::american, Style::european};
constexpr Engine kEngines[] = {Engine::fft,   Engine::vanilla,
                               Engine::vanilla_parallel, Engine::tiled,
                               Engine::cache_oblivious,  Engine::quantlib};

[[nodiscard]] std::vector<PricingRequest> all_combinations(std::int64_t T) {
  std::vector<PricingRequest> reqs;
  for (Model m : kModels)
    for (Right r : kRights)
      for (Style s : kStyles)
        for (Engine e : kEngines) {
          PricingRequest q;
          q.spec = paper_spec();
          q.T = T;
          q.model = m;
          q.right = r;
          q.style = s;
          q.engine = e;
          reqs.push_back(q);
        }
  return reqs;
}

TEST(Pricer, CapabilityMatrixMatchesPerItemStatus) {
  // One heterogeneous batch over the full 72-combination matrix: the
  // advertised capability must coincide with what actually prices, and
  // unsupported items must report status instead of throwing.
  Pricer session;
  const std::vector<PricingRequest> reqs = all_combinations(128);
  const std::vector<PricingResult> res = session.price_many(reqs);
  ASSERT_EQ(res.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const PricingRequest& q = reqs[i];
    const bool advertised =
        Pricer::supports(q.model, q.right, q.style, q.engine);
    if (advertised) {
      EXPECT_EQ(res[i].status, Status::ok)
          << to_string(q.model) << "/" << to_string(q.right) << "/"
          << to_string(q.style) << "/" << to_string(q.engine) << ": "
          << res[i].message;
      EXPECT_TRUE(std::isfinite(res[i].price));
      EXPECT_GE(res[i].price, 0.0);
    } else {
      EXPECT_EQ(res[i].status, Status::unsupported)
          << to_string(q.model) << "/" << to_string(q.right) << "/"
          << to_string(q.style) << "/" << to_string(q.engine);
      EXPECT_FALSE(res[i].message.empty());
      EXPECT_TRUE(std::isnan(res[i].price));
    }
  }
}

TEST(Pricer, SessionPricesBitIdenticalToFreeFunctions) {
  Pricer session;
  for (const PricingRequest& q : all_combinations(96)) {
    if (!Pricer::supports(q.model, q.right, q.style, q.engine)) {
      EXPECT_THROW((void)price(q.spec, q.T, q.model, q.right, q.style,
                               q.engine),
                   std::invalid_argument);
      continue;
    }
    const PricingResult res = session.price_one(q);
    ASSERT_EQ(res.status, Status::ok) << res.message;
    EXPECT_EQ(res.price, price(q.spec, q.T, q.model, q.right, q.style,
                               q.engine))
        << to_string(q.model) << "/" << to_string(q.right) << "/"
        << to_string(q.style) << "/" << to_string(q.engine);
  }
}

TEST(Pricer, WarmSessionStaysBitIdenticalAcrossRepeats) {
  // Second serve hits the session's warm kernel caches; the arithmetic, and
  // therefore the bits, must not change.
  Pricer session;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 512;
  const double cold = session.price_one(q).price;
  const double warm = session.price_one(q).price;
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, bopm::american_call_fft(q.spec, q.T));
  const Pricer::Stats st = session.stats();
  EXPECT_GE(st.cache_hits, 1u);  // the repeat found its tap group warm
}

TEST(Pricer, MixedChainReportsPerItemStatusWithoutThrowing) {
  std::vector<PricingRequest> reqs(3);
  for (PricingRequest& q : reqs) {
    q.spec = paper_spec();
    q.T = 128;
  }
  reqs[0].model = Model::bopm;                       // supported
  reqs[1].model = Model::bsm;                        // bsm call: unsupported
  reqs[1].right = Right::call;
  reqs[2].model = Model::topm;                       // unsupported engine
  reqs[2].engine = Engine::quantlib;

  Pricer session;
  std::vector<PricingResult> res;
  ASSERT_NO_THROW(res = session.price_many(reqs));
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, Status::ok);
  EXPECT_EQ(res[1].status, Status::unsupported);
  EXPECT_EQ(res[2].status, Status::unsupported);
  EXPECT_NE(res[1].message.find("bsm/call"), std::string::npos);
}

TEST(Pricer, LegacyTZeroIntrinsicValueStillWorks) {
  // The seed pricers accept T == 0 (intrinsic value); the session and the
  // thin wrappers must not regress that.
  OptionSpec spec = paper_spec();  // K=130 > S=127.62: put is in the money
  EXPECT_EQ(price(spec, 0, Model::bopm, Right::put), spec.K - spec.S);
  EXPECT_EQ(price(spec, 0, Model::bopm, Right::call), 0.0);
  PricingRequest q;
  q.spec = spec;
  q.T = 0;
  q.right = Right::put;
  Pricer session;
  const PricingResult res = session.price_one(q);
  EXPECT_EQ(res.status, Status::ok);
  EXPECT_EQ(res.price, spec.K - spec.S);

  // The BSM grid has no T=0 analogue (derive_bsm needs a step): per-item
  // error, not a contract abort.
  q.model = Model::bsm;
  const PricingResult bsm0 = session.price_one(q);
  EXPECT_EQ(bsm0.status, Status::error);
  EXPECT_NE(bsm0.message.find("bsm"), std::string::npos);
}

TEST(Pricer, InvalidSpecInChainBecomesPerItemErrorNotAbort) {
  // derive_* enforce V > 0 etc. with aborting contract checks; the session
  // must validate quotes at the boundary so a V=0 item reports
  // Status::error while the rest of the chain prices.
  std::vector<PricingRequest> reqs(2);
  reqs[0].spec = paper_spec();
  reqs[0].T = 128;
  reqs[1].spec = paper_spec();
  reqs[1].spec.V = 0.0;
  reqs[1].T = 128;
  Pricer session;
  std::vector<PricingResult> res;
  ASSERT_NO_THROW(res = session.price_many(reqs));
  EXPECT_EQ(res[0].status, Status::ok);
  EXPECT_EQ(res[1].status, Status::error);
  EXPECT_NE(res[1].message.find("invalid option spec"), std::string::npos);
  // And the legacy wrapper surfaces it as invalid_argument, not an abort.
  EXPECT_THROW((void)price(reqs[1].spec, 128, Model::bopm, Right::call),
               std::invalid_argument);
}

TEST(Pricer, NonFiniteFieldsBecomePerItemErrorsAcrossEngines) {
  // NaN/Inf in ANY quote field must stop at the session boundary with a
  // field-naming Status::error — never flow into a solver as lattice
  // drift or a boundary node. Every field, both non-finite flavors, across
  // a lattice engine, the vanilla reference, and the boundary engine.
  struct FieldCase {
    const char* name;
    void (*poison)(OptionSpec&, double);
  };
  const FieldCase kFields[] = {
      {"S", [](OptionSpec& s, double v) { s.S = v; }},
      {"K", [](OptionSpec& s, double v) { s.K = v; }},
      {"R", [](OptionSpec& s, double v) { s.R = v; }},
      {"V", [](OptionSpec& s, double v) { s.V = v; }},
      {"Y", [](OptionSpec& s, double v) { s.Y = v; }},
      {"expiry_years", [](OptionSpec& s, double v) { s.expiry_years = v; }},
  };
  const double kPoisons[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};

  Pricer session;
  for (int eng = 0; eng < 3; ++eng) {
    PricingRequest base;
    base.spec = paper_spec();
    base.T = 64;
    if (eng == 1) base.engine = Engine::vanilla;
    if (eng == 2) {
      base.model = Model::bsm;
      base.right = Right::put;
      base.engine = Engine::boundary;
    }
    for (const FieldCase& f : kFields) {
      for (double poison : kPoisons) {
        // The poisoned item rides next to a healthy one: the error is
        // per-item, the chain keeps pricing.
        std::vector<PricingRequest> reqs(2, base);
        f.poison(reqs[1].spec, poison);
        std::vector<PricingResult> res;
        ASSERT_NO_THROW(res = session.price_many(reqs))
            << "engine " << eng << " field " << f.name;
        EXPECT_EQ(res[0].status, Status::ok)
            << "engine " << eng << " field " << f.name;
        EXPECT_EQ(res[1].status, Status::error)
            << "engine " << eng << " field " << f.name << " = " << poison;
        EXPECT_NE(res[1].message.find("non-finite"), std::string::npos);
        EXPECT_NE(res[1].message.find(f.name), std::string::npos)
            << "the diagnostic must name the bad field: " << res[1].message;
      }
    }
  }
}

TEST(Pricer, NonFiniteImpliedVolInputsAreRejectedAtTheBoundary) {
  // The IV inversion has its own inputs: a NaN quote or a non-finite
  // bracket edge must be a per-item error, not a Newton iteration on NaN.
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 64;
  q.compute = Compute::implied_vol;
  q.target_price = std::numeric_limits<double>::quiet_NaN();
  q.iv.vol_lo = 0.05;
  q.iv.vol_hi = 2.0;
  Pricer session;
  std::vector<PricingResult> res = session.price_many({&q, 1});
  EXPECT_EQ(res.at(0).status, Status::error);
  EXPECT_NE(res[0].message.find("non-finite"), std::string::npos);

  q.target_price = 6.0;
  q.iv.vol_hi = std::numeric_limits<double>::infinity();
  res = session.price_many({&q, 1});
  EXPECT_EQ(res.at(0).status, Status::error);
}

TEST(Pricer, BadQuoteInChainFailsAloneNotTheBatch) {
  // A vol too small for a valid CRR lattice (risk-neutral probability
  // outside (0,1)) makes derive_bopm throw during the tap-grouping phase;
  // the batch must absorb that into the item's Status and keep pricing the
  // healthy quotes.
  std::vector<PricingRequest> reqs(2);
  reqs[0].spec = paper_spec();
  reqs[0].T = 128;
  reqs[1].spec = paper_spec();
  reqs[1].spec.V = 0.01;  // with R >> V the lattice drift outruns the moves
  reqs[1].spec.R = 0.2;
  reqs[1].T = 128;

  Pricer session;
  std::vector<PricingResult> res;
  ASSERT_NO_THROW(res = session.price_many(reqs));
  EXPECT_EQ(res[0].status, Status::ok);
  EXPECT_EQ(res[0].price, price(reqs[0].spec, 128, Model::bopm, Right::call));
  EXPECT_EQ(res[1].status, Status::error);
  EXPECT_NE(res[1].error, nullptr);
  EXPECT_FALSE(res[1].message.empty());
}

TEST(Pricer, BsmChainSharesOneKernelCache) {
  // PR-2 follow-up closed: the FDM solver now accepts an injected cache, so
  // a BSM strike ladder (identical b, c, a taps) collapses to one group.
  std::vector<PricingRequest> reqs;
  for (double k : {110.0, 120.0, 130.0, 140.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.K = k;
    q.T = 256;
    q.model = Model::bsm;
    q.right = Right::put;
    reqs.push_back(q);
  }
  Pricer session;
  const std::vector<PricingResult> res = session.price_many(reqs);
  const Pricer::Stats st = session.stats();
  EXPECT_EQ(st.cache_misses, 1u);  // one tap group for the whole ladder
  EXPECT_EQ(st.cache_hits, 3u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(res[i].status, Status::ok);
    EXPECT_EQ(res[i].price,
              price(reqs[i].spec, reqs[i].T, Model::bsm, Right::put));
  }
}

TEST(Pricer, GreeksManyMatchesFreeFunctions) {
  std::vector<PricingRequest> reqs(2);
  reqs[0].spec = paper_spec();
  reqs[0].T = 512;
  reqs[0].right = Right::call;
  reqs[1].spec = paper_spec();
  reqs[1].T = 512;
  reqs[1].right = Right::put;

  Pricer session;
  const std::vector<PricingResult> res = session.greeks_many(reqs);
  ASSERT_EQ(res[0].status, Status::ok) << res[0].message;
  ASSERT_EQ(res[1].status, Status::ok) << res[1].message;

  // Call greeks: identical arithmetic (shared caches change nothing).
  const Greeks c = american_call_greeks_bopm(paper_spec(), 512);
  EXPECT_EQ(res[0].greeks.price, c.price);
  EXPECT_EQ(res[0].greeks.delta, c.delta);
  EXPECT_EQ(res[0].greeks.gamma, c.gamma);
  EXPECT_EQ(res[0].greeks.theta, c.theta);
  EXPECT_EQ(res[0].greeks.vega, c.vega);
  EXPECT_EQ(res[0].greeks.rho, c.rho);
  EXPECT_EQ(res[0].price, c.price);

  // Put greeks: the session reprices with the direct mirrored-lattice put
  // (what price() uses) while the free function goes through put-call
  // symmetry; the two pricers agree to FFT rounding, so the
  // finite-difference greeks agree to amplified cancellation noise.
  const Greeks p = american_put_greeks_bopm(paper_spec(), 512);
  EXPECT_NEAR(res[1].greeks.price, p.price, 1e-8 * (1.0 + std::abs(p.price)));
  EXPECT_NEAR(res[1].greeks.delta, p.delta, 1e-5);
  EXPECT_NEAR(res[1].greeks.gamma, p.gamma, 1e-4);
  EXPECT_NEAR(res[1].greeks.theta, p.theta, 1e-3);
  EXPECT_NEAR(res[1].greeks.vega, p.vega, 1e-3 * (1.0 + std::abs(p.vega)));
  EXPECT_NEAR(res[1].greeks.rho, p.rho, 1e-3 * (1.0 + std::abs(p.rho)));
}

TEST(Pricer, ImpliedVolManyMatchesFreeInversionBitForBit) {
  // Round-trip: price a small ladder at a known vol, invert through the
  // session, compare against the free function AND the known vol.
  const std::int64_t T = 512;
  std::vector<PricingRequest> reqs;
  for (double k : {120.0, 130.0, 140.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.K = k;
    q.T = T;
    q.right = Right::put;  // rate-dominant put exercises the direct pricer
    q.spec.R = 0.05;
    q.spec.Y = 0.0;
    q.target_price = bopm::american_put_fft_direct(q.spec, T);
    reqs.push_back(q);
  }
  Pricer session;
  const std::vector<PricingResult> res = session.implied_vol_many(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(res[i].status, Status::ok) << res[i].message;
    EXPECT_TRUE(res[i].implied_vol.converged);
    EXPECT_NEAR(res[i].implied_vol.vol, reqs[i].spec.V, 2e-4);

    ImpliedVolConfig cfg;
    cfg.T = T;
    const ImpliedVolResult ref = american_put_implied_vol(
        reqs[i].spec, reqs[i].target_price, cfg);
    // Same evaluations -> same Newton iterates -> identical bits.
    EXPECT_EQ(res[i].implied_vol.vol, ref.vol);
    EXPECT_EQ(res[i].implied_vol.iterations, ref.iterations);
  }
}

TEST(Pricer, WarmStartImpliedVolConvergesFasterToTheSameRoot) {
  const std::int64_t T = 512;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  q.target_price = bopm::american_call_fft(q.spec, T);

  Pricer session;
  const PricingResult cold = session.implied_vol_many({&q, 1}).front();
  ASSERT_TRUE(cold.implied_vol.converged);
  EXPECT_EQ(session.stats().warm_roots, 1u);

  // Tick the quote a few bp: the warm secant must land on the moved root
  // with (far) fewer evaluations than the cold bracketed Newton.
  PricingRequest ticked = q;
  ticked.target_price = q.target_price * 1.0003;
  const PricingResult warm = session.implied_vol_many({&ticked, 1}).front();
  ASSERT_TRUE(warm.implied_vol.converged);
  EXPECT_LT(warm.implied_vol.iterations, cold.implied_vol.iterations);
  EXPECT_GT(warm.implied_vol.vol, cold.implied_vol.vol);  // price rose

  // And it must agree with a cold inversion of the same moved quote.
  ImpliedVolConfig cfg;
  cfg.T = T;
  const ImpliedVolResult ref =
      american_call_implied_vol(q.spec, ticked.target_price, cfg);
  EXPECT_NEAR(warm.implied_vol.vol, ref.vol, 1e-6);
}

TEST(Pricer, WarmStartDisabledReplaysTheColdIterationExactly) {
  const std::int64_t T = 256;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  q.target_price = bopm::american_call_fft(q.spec, T);

  PricerConfig cfg;
  cfg.warm_start_iv = false;
  Pricer session(cfg);
  const PricingResult first = session.implied_vol_many({&q, 1}).front();
  const PricingResult second = session.implied_vol_many({&q, 1}).front();
  EXPECT_EQ(first.implied_vol.vol, second.implied_vol.vol);
  EXPECT_EQ(first.implied_vol.iterations, second.implied_vol.iterations);
  EXPECT_EQ(session.stats().warm_roots, 0u);
}

TEST(Pricer, ImpliedVolOutOfRangeReportsFailedToConverge) {
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 256;
  q.target_price = 2.0 * q.spec.S;  // a call is never worth more than S
  Pricer session;
  const PricingResult res = session.implied_vol_many({&q, 1}).front();
  EXPECT_EQ(res.status, Status::failed_to_converge);
  EXPECT_FALSE(res.implied_vol.converged);
  EXPECT_FALSE(res.message.empty());
}

TEST(Pricer, ImpliedVolBadBracketIsPerItemErrorNotAbort) {
  // The free functions reject vol_lo <= 0 with an aborting contract check;
  // at the session boundary the same bad config must become Status::error.
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 128;
  q.target_price = 5.0;
  q.iv.vol_lo = 0.0;
  q.spec.R = q.spec.Y;  // no drift: the validity clamp cannot rescue lo
  Pricer session;
  std::vector<PricingResult> res;
  ASSERT_NO_THROW(res = session.implied_vol_many({&q, 1}));
  EXPECT_EQ(res.front().status, Status::error);
  EXPECT_NE(res.front().message.find("bracket"), std::string::npos);
}

TEST(Pricer, WarmRootDoesNotLeakAcrossNarrowedBrackets) {
  // A root found under the default bracket must not satisfy a later
  // request whose configured bracket excludes it.
  const std::int64_t T = 256;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  q.target_price = bopm::american_call_fft(q.spec, T);  // root near V=0.2
  Pricer session;
  const PricingResult wide = session.implied_vol_many({&q, 1}).front();
  ASSERT_TRUE(wide.implied_vol.converged);
  ASSERT_NEAR(wide.implied_vol.vol, 0.2, 1e-3);

  PricingRequest narrowed = q;
  narrowed.iv.vol_hi = 0.1;  // the true root is now out of bounds
  const PricingResult res = session.implied_vol_many({&narrowed, 1}).front();
  EXPECT_EQ(res.status, Status::failed_to_converge);
  EXPECT_FALSE(res.implied_vol.converged);
}

TEST(Pricer, WarmSessionStillRejectsOutOfRangeQuotes) {
  // Converge once (stores a warm root), then push the quote out of the
  // attainable range: the warm secant must hand over to the cold bracketed
  // path and report failed-to-converge within the iteration budget instead
  // of burning it on bisection.
  const std::int64_t T = 256;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  q.target_price = bopm::american_call_fft(q.spec, T);
  Pricer session;
  ASSERT_TRUE(session.implied_vol_many({&q, 1}).front().implied_vol.converged);

  PricingRequest jumped = q;
  jumped.target_price = 2.0 * q.spec.S;
  const PricingResult res = session.implied_vol_many({&jumped, 1}).front();
  EXPECT_EQ(res.status, Status::failed_to_converge);
  EXPECT_LT(res.implied_vol.iterations, jumped.iv.max_iterations / 2);

  // And the warm root survives for the next sane quote.
  PricingRequest sane = q;
  sane.target_price = q.target_price * 1.0002;
  EXPECT_TRUE(session.implied_vol_many({&sane, 1}).front().implied_vol.converged);
}

TEST(Pricer, GreeksUnsupportedOutsideBopmAmericanFft) {
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 128;
  q.model = Model::topm;
  q.compute = Compute::price | Compute::greeks;
  Pricer session;
  const PricingResult res = session.price_one(q);
  EXPECT_EQ(res.status, Status::unsupported);
  EXPECT_FALSE(
      Pricer::supports(Model::topm, Right::call, Style::american, Engine::fft,
                       Compute::greeks));
  EXPECT_TRUE(
      Pricer::supports(Model::topm, Right::call, Style::american, Engine::fft,
                       Compute::price));
}

TEST(Pricer, LruEvictionKeepsResultsCorrect) {
  // Five expiry groups through a registry capped at two: groups rotate out
  // and are rebuilt, results never change.
  PricerConfig cfg;
  cfg.max_kernel_caches = 2;
  Pricer session(cfg);
  std::vector<PricingRequest> reqs;
  for (double e : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.expiry_years = e;
    q.T = 256;
    reqs.push_back(q);
  }
  for (int round = 0; round < 2; ++round) {
    const std::vector<PricingResult> res = session.price_many(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_EQ(res[i].status, Status::ok);
      EXPECT_EQ(res[i].price, bopm::american_call_fft(reqs[i].spec, 256));
    }
  }
  EXPECT_LE(session.stats().kernel_caches, 2u);
}

TEST(Pricer, PerRequestSolverOverride) {
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 512;
  core::SolverConfig sc;
  sc.base_case = 32;
  q.solver = sc;
  Pricer session;
  const PricingResult res = session.price_one(q);
  ASSERT_EQ(res.status, Status::ok);
  EXPECT_EQ(res.price, bopm::american_call_fft(q.spec, q.T, sc));
}

TEST(Pricer, EmptyBatchAndClear) {
  Pricer session;
  EXPECT_TRUE(session.price_many({}).empty());
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 128;
  (void)session.price_one(q);
  EXPECT_GE(session.stats().kernel_caches, 1u);
  session.clear();
  const Pricer::Stats st = session.stats();
  EXPECT_EQ(st.kernel_caches, 0u);
  EXPECT_EQ(st.requests, 0u);
}

TEST(Pricer, TransientFloodCannotEvictBaseGroups) {
  // A chain's own tap groups live in the base tier; implied-vol trial
  // evaluations mint transient groups in their own (smaller) LRU. Flooding
  // the session with trial vols must leave every base group warm.
  PricerConfig cfg;
  cfg.max_kernel_caches = 8;
  cfg.max_transient_kernel_caches = 2;
  cfg.warm_start_iv = false;  // every tick replays the full cold Newton
  Pricer session(cfg);

  std::vector<PricingRequest> chain;
  for (double e : {0.5, 1.0, 2.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.expiry_years = e;
    q.T = 256;
    chain.push_back(q);
  }
  const std::vector<PricingResult> priced = session.price_many(chain);
  for (const PricingResult& r : priced) ASSERT_EQ(r.status, Status::ok);
  const Pricer::Stats warm = session.stats();
  EXPECT_EQ(warm.base_kernel_caches, 3u);

  // Flood: inversions evaluate ~a dozen distinct trial vols each, every one
  // a distinct tap group.
  std::vector<PricingRequest> quotes = chain;
  for (std::size_t i = 0; i < quotes.size(); ++i)
    quotes[i].target_price = priced[i].price * 1.02;
  for (const PricingResult& r : session.implied_vol_many(quotes))
    ASSERT_TRUE(r.implied_vol.converged);

  const Pricer::Stats flooded = session.stats();
  EXPECT_EQ(flooded.base_kernel_caches, 3u);  // base tier untouched
  EXPECT_LE(flooded.transient_kernel_caches,
            cfg.max_transient_kernel_caches);

  // Repricing the chain hits every base group: zero new misses.
  const std::uint64_t misses_before = flooded.cache_misses;
  const std::vector<PricingResult> again = session.price_many(chain);
  for (std::size_t i = 0; i < chain.size(); ++i)
    EXPECT_EQ(again[i].price, priced[i].price);
  EXPECT_EQ(session.stats().cache_misses, misses_before);
}

TEST(Pricer, TransientGroupPromotedWhenRequestedAsBase) {
  // The converged root vol was evaluated by the inversion, so its tap group
  // sits in the transient tier; a subsequent request QUOTED at that vol
  // must promote the group (hit, not rebuild) into the base tier.
  PricerConfig cfg;
  cfg.max_kernel_caches = 8;
  cfg.max_transient_kernel_caches = 32;  // hold every trial of one Newton
  cfg.warm_start_iv = false;
  Pricer session(cfg);

  PricingRequest q;
  q.spec = paper_spec();
  q.T = 256;
  const double base_price = session.price_one(q).price;

  PricingRequest quote = q;
  quote.target_price = base_price * 1.01;
  const PricingResult inverted =
      session.implied_vol_many({&quote, 1}).front();
  ASSERT_TRUE(inverted.implied_vol.converged);
  const Pricer::Stats after_iv = session.stats();
  ASSERT_GE(after_iv.transient_kernel_caches, 1u);

  PricingRequest at_root = q;
  at_root.spec.V = inverted.implied_vol.vol;
  ASSERT_EQ(session.price_one(at_root).status, Status::ok);
  const Pricer::Stats promoted = session.stats();
  EXPECT_EQ(promoted.cache_misses, after_iv.cache_misses);  // promoted: hit
  EXPECT_EQ(promoted.base_kernel_caches, after_iv.base_kernel_caches + 1);
  EXPECT_EQ(promoted.transient_kernel_caches,
            after_iv.transient_kernel_caches - 1);
}

TEST(Pricer, CrossExpirySharingCollapsesToOneTapGroup) {
  // A 5-expiry chain whose expiries are commensurate with the finest dt:
  // with sharing OFF every expiry derives its own taps (5 registry groups);
  // with sharing ON the batch is renormalized to the common dt and the
  // whole chain lands in ONE group, with prices within the lattice's own
  // discretization tolerance of the unshared ones.
  const double expiries[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  std::vector<PricingRequest> chain;
  for (const double e : expiries) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.expiry_years = e;
    q.T = 1024;  // same step count per leg => five distinct dt values
    chain.push_back(q);
  }

  Pricer plain;
  const std::vector<PricingResult> off = plain.price_many(chain);
  for (const PricingResult& r : off) ASSERT_EQ(r.status, Status::ok);
  EXPECT_EQ(plain.stats().base_kernel_caches, 5u);

  PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  Pricer sharing(cfg);
  const std::vector<PricingResult> on = sharing.price_many(chain);
  for (const PricingResult& r : on) ASSERT_EQ(r.status, Status::ok);
  EXPECT_EQ(sharing.stats().base_kernel_caches, 1u);

  // Normalization refines T (never coarsens), so the shared prices sit
  // within the coarser leg's own O(1/T) discretization error band of the
  // unshared ones (documented in DESIGN.md §5; generous 1% relative guard
  // here — observed differences are ~1e-4 relative at T = 1024).
  for (std::size_t i = 0; i < chain.size(); ++i)
    EXPECT_NEAR(on[i].price, off[i].price, 0.01 * off[i].price) << "leg " << i;
  // The finest-dt leg (expiry 0.25 at T = 1024) is the reference grid: its
  // discretization is unchanged, so its price is bit-identical.
  EXPECT_EQ(on[0].price, off[0].price);
}

TEST(Pricer, CrossExpirySharingOffByDefault) {
  PricerConfig cfg;
  EXPECT_FALSE(cfg.share_kernels_across_expiries);
  // And incommensurate mixes never blow up the lattice: a leg whose
  // renormalized T would exceed 8x its request keeps its own grid.
  cfg.share_kernels_across_expiries = true;
  Pricer session(cfg);
  std::vector<PricingRequest> mix(2);
  for (PricingRequest& q : mix) q.spec = paper_spec();
  mix[0].spec.expiry_years = 0.02;  // ~1 week at fine dt
  mix[0].T = 512;
  mix[1].spec.expiry_years = 1.0;   // a year at coarse dt
  mix[1].T = 512;                   // shared dt would need T = 25600
  const auto res = session.price_many(mix);
  ASSERT_EQ(res[0].status, Status::ok);
  ASSERT_EQ(res[1].status, Status::ok);
  EXPECT_EQ(res[1].price, Pricer(PricerConfig{}).price_one(mix[1]).price);
  EXPECT_EQ(session.stats().base_kernel_caches, 2u);  // no forced share
}

// ---- quantized sharing (PricerConfig::share_quantum) --------------------

// The implementation's bucket function, replicated so the tests can derive
// values guaranteed inside / astride one bucket instead of guessing.
[[nodiscard]] std::int64_t vol_bucket(double v, double quantum) {
  return static_cast<std::int64_t>(
      std::floor(std::log(v) / std::log1p(quantum)));
}

[[nodiscard]] std::vector<PricingRequest> drifting_vol_chain(
    const std::vector<double>& vols) {
  const double expiries[] = {0.26, 0.51, 0.77, 1.03, 1.28};
  std::vector<PricingRequest> chain;
  for (std::size_t i = 0; i < vols.size(); ++i) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.expiry_years = expiries[i % 5];
    q.spec.V = vols[i];
    q.T = 512;
    chain.push_back(q);
  }
  return chain;
}

TEST(Pricer, ShareQuantumZeroReproducesExactGroupingBitIdentically) {
  // Distinct-by-ulps vols under quantum = 0: the exact byte key sees five
  // different (R, V, Y) tuples, so no group forms, normalization is a
  // no-op, and every price is bit-identical to a sharing-off session.
  std::vector<double> vols;
  for (int i = 0; i < 5; ++i) vols.push_back(0.25 * (1.0 + i * 1e-9));
  const std::vector<PricingRequest> chain = drifting_vol_chain(vols);

  Pricer plain;
  const auto off = plain.price_many(chain);
  PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  ASSERT_EQ(cfg.share_quantum, 0.0);  // the documented default
  Pricer sharing(cfg);
  const auto on = sharing.price_many(chain);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    ASSERT_EQ(on[i].status, Status::ok);
    EXPECT_EQ(on[i].price, off[i].price) << "leg " << i;
  }
  EXPECT_EQ(sharing.stats().base_kernel_caches, 5u);  // no quantized merge
}

TEST(Pricer, ShareQuantumLegsStraddlingBucketBoundaryNeverShare) {
  // Two vols a factor (1 + quantum/500) apart — far inside the tolerance —
  // but placed astride a bucket boundary: the conservative floor bucketing
  // must keep them in separate groups (documented in pricer.hpp).
  const double quantum = 1e-3;
  const std::int64_t b = vol_bucket(0.25, quantum);
  const double lo = std::exp(static_cast<double>(b) * std::log1p(quantum));
  const double v_below = lo * (1.0 - quantum / 1000.0);
  const double v_above = lo * (1.0 + quantum / 1000.0);
  ASSERT_NE(vol_bucket(v_below, quantum), vol_bucket(v_above, quantum));
  ASSERT_LT(v_above / v_below - 1.0, quantum);

  PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  cfg.share_quantum = quantum;
  Pricer session(cfg);
  const auto res = session.price_many(drifting_vol_chain({v_below, v_above}));
  for (const auto& r : res) ASSERT_EQ(r.status, Status::ok);
  EXPECT_EQ(session.stats().base_kernel_caches, 2u);
}

TEST(Pricer, ShareQuantumCollapsesDriftingVolChainToOneGroup) {
  // Five expiries whose vols drift inside ONE bucket (derived from the
  // bucket's own bounds, so the collapse is guaranteed, not probabilistic):
  // the whole chain must land in a single kernel group, with every price
  // inside the documented contract of its unshared counterpart. The
  // representative tuple is the lexicographically smallest member, so each
  // vol moves by < quantum relative.
  const double quantum = 1e-3;
  const std::int64_t b = vol_bucket(0.25, quantum);
  const double lo = std::exp(static_cast<double>(b) * std::log1p(quantum));
  std::vector<double> vols;
  for (int i = 0; i < 5; ++i)
    vols.push_back(lo * (1.0 + (i + 1) * quantum / 8.0));
  for (const double v : vols)
    ASSERT_EQ(vol_bucket(v, quantum), b) << "test premise: one bucket";

  const std::vector<PricingRequest> chain = drifting_vol_chain(vols);
  Pricer plain;
  const auto off = plain.price_many(chain);
  EXPECT_EQ(plain.stats().base_kernel_caches, 5u);

  PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  cfg.share_quantum = quantum;
  Pricer sharing(cfg);
  const auto on = sharing.price_many(chain);
  EXPECT_EQ(sharing.stats().base_kernel_caches, 1u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    ASSERT_EQ(on[i].status, Status::ok);
    // Contract bound: the vol snap moves prices first-order by
    // vega * dV (dV/V < quantum) plus the sharing refinement's O(1/T)
    // band — both far inside 1% relative at these parameters.
    EXPECT_NEAR(on[i].price, off[i].price, 0.01 * off[i].price)
        << "leg " << i;
  }
}

TEST(Pricer, ShareQuantumGroupingIsBatchOrderIndependent) {
  // The representative is the lexicographically smallest tuple, not the
  // first-seen member: reversing the batch must produce the same prices
  // leg for leg.
  const double quantum = 1e-3;
  const std::int64_t b = vol_bucket(0.25, quantum);
  const double lo = std::exp(static_cast<double>(b) * std::log1p(quantum));
  std::vector<double> vols;
  for (int i = 0; i < 5; ++i)
    vols.push_back(lo * (1.0 + (i + 1) * quantum / 8.0));
  std::vector<PricingRequest> fwd = drifting_vol_chain(vols);
  std::vector<PricingRequest> rev(fwd.rbegin(), fwd.rend());

  PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  cfg.share_quantum = quantum;
  const auto a = Pricer(cfg).price_many(fwd);
  const auto z = Pricer(cfg).price_many(rev);
  for (std::size_t i = 0; i < fwd.size(); ++i)
    EXPECT_EQ(a[i].price, z[fwd.size() - 1 - i].price) << "leg " << i;
}

TEST(Pricer, GreeksWarmStartReplaysBumpedLegsExactly) {
  // Tick 1 prices every finite-difference leg; tick 2 re-requests the same
  // contracts and must serve the legs from the bumped-price store with
  // bit-identical results. Opting out re-prices every leg and still agrees
  // exactly (memoization is exact, not approximate).
  std::vector<PricingRequest> chain;
  for (int i = 0; i < 4; ++i) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.K = 120.0 + 5.0 * i;
    q.T = 128;
    chain.push_back(q);
  }

  Pricer warm;
  const auto tick1 = warm.greeks_many(chain);
  for (const PricingResult& r : tick1) ASSERT_EQ(r.status, Status::ok);
  const Pricer::Stats after1 = warm.stats();
  EXPECT_GT(after1.warm_bump_prices, 0u);

  const auto tick2 = warm.greeks_many(chain);
  const Pricer::Stats after2 = warm.stats();
  EXPECT_GT(after2.bump_price_hits, after1.bump_price_hits);
  // No new bumped evaluations were priced on the repeat.
  EXPECT_EQ(after2.warm_bump_prices, after1.warm_bump_prices);

  PricerConfig cold_cfg;
  cold_cfg.warm_start_greeks = false;
  Pricer cold(cold_cfg);
  const auto cold_res = cold.greeks_many(chain);
  EXPECT_EQ(cold.stats().warm_bump_prices, 0u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    ASSERT_EQ(tick2[i].status, Status::ok);
    EXPECT_EQ(tick1[i].greeks.vega, tick2[i].greeks.vega) << "item " << i;
    EXPECT_EQ(tick1[i].greeks.rho, tick2[i].greeks.rho);
    EXPECT_EQ(tick1[i].greeks.delta, tick2[i].greeks.delta);
    EXPECT_EQ(tick1[i].price, tick2[i].price);
    EXPECT_EQ(cold_res[i].greeks.vega, tick1[i].greeks.vega) << "item " << i;
    EXPECT_EQ(cold_res[i].greeks.rho, tick1[i].greeks.rho);
  }
}

TEST(Pricer, SpectrumBudgetCapsRegistryBytes) {
  // A deliberately tiny spectrum budget: pricing a mixed-T batch on the fft
  // engine materializes more spectra than the cap holds, so the registry
  // must evict (stats expose it) while every price stays correct — eviction
  // only forgets warm state.
  PricerConfig tiny;
  // Holds a handful of spectra, comfortably above the largest single entry
  // these T produce (~32 KiB at overlap-save minimal padding) but far below
  // their total footprint.
  tiny.max_spectrum_bytes = 100 << 10;
  Pricer session(tiny);
  std::vector<PricingRequest> reqs;
  for (const std::int64_t T : {1024LL, 2048LL, 3000LL}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.T = T;
    reqs.push_back(q);
  }
  const auto out = session.price_many(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(out[i].status, Status::ok) << out[i].message;
    const double want = bopm::american_call_fft(reqs[i].spec, reqs[i].T);
    EXPECT_EQ(out[i].price, want) << "item " << i;
  }
  const Pricer::Stats st = session.stats();
  EXPECT_LE(st.spectrum_bytes, tiny.max_spectrum_bytes);
  EXPECT_GT(st.spectrum_evictions, 0u);

  // Unbounded sessions never evict and report their footprint.
  PricerConfig unbounded;
  unbounded.max_spectrum_bytes = 0;
  Pricer big(unbounded);
  (void)big.price_many(reqs);
  EXPECT_EQ(big.stats().spectrum_evictions, 0u);
}

TEST(Pricer, StatusToString) {
  EXPECT_EQ(to_string(Status::ok), "ok");
  EXPECT_EQ(to_string(Status::unsupported), "unsupported");
  EXPECT_EQ(to_string(Status::failed_to_converge), "failed-to-converge");
  EXPECT_EQ(to_string(Status::error), "error");
  EXPECT_EQ(to_string(Status::overloaded), "overloaded");
}

TEST(Pricer, ServiceStatsCountBatchesScratchHighWaterAndTrims) {
  // The admission-control inputs the service plane keys on: batch count,
  // the arena's true high-water mark (measured BEFORE the between-batches
  // trim), and how many trims actually released memory.
  PricerConfig cfg;
  cfg.parallel = false;  // one thread -> one arena to reason about
  cfg.scratch_trim_bytes = std::size_t{1} << 12;
  Pricer session(cfg);
  EXPECT_EQ(session.stats().batches, 0u);
  EXPECT_EQ(session.stats().scratch_high_water_bytes, 0u);
  EXPECT_EQ(session.stats().scratch_trim_events, 0u);

  PricingRequest big;
  big.spec = paper_spec();
  big.T = 512;  // fft descent: arena grows far beyond the 4 KiB retain
  ASSERT_EQ(session.price_many({&big, 1}).at(0).status, Status::ok);
  const Pricer::Stats st1 = session.stats();
  EXPECT_EQ(st1.batches, 1u);
  EXPECT_GT(st1.scratch_high_water_bytes, cfg.scratch_trim_bytes)
      << "high-water mark must be measured before the trim";
  EXPECT_GE(st1.scratch_trim_events, 1u);

  // A smaller batch cannot lower the mark (it is a session-lifetime max),
  // and every price_many counts, whatever its size.
  PricingRequest small = big;
  small.T = 64;
  ASSERT_EQ(session.price_many({&small, 1}).at(0).status, Status::ok);
  const Pricer::Stats st2 = session.stats();
  EXPECT_EQ(st2.batches, 2u);
  EXPECT_GE(st2.scratch_high_water_bytes, st1.scratch_high_water_bytes);

  session.clear();
  const Pricer::Stats st3 = session.stats();
  EXPECT_EQ(st3.batches, 0u);
  EXPECT_EQ(st3.scratch_high_water_bytes, 0u);
  EXPECT_EQ(st3.scratch_trim_events, 0u);
}

}  // namespace
