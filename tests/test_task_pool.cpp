// Unit tests for the execution plane (core::TaskPool): fork/join
// correctness of invoke2 and the counter-scheduled for_each, exception
// propagation across task boundaries, nested forks, width retargeting,
// detached tasks, and the per-worker broadcast hook. Everything here must
// hold at any pool width — including width 1, where the pool degrades to
// plain inline calls — so several cases sweep widths explicitly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/core/task_pool.hpp"

namespace {

using namespace amopt;
using core::TaskPool;

TEST(TaskPool, Invoke2RunsBothLegsAtEveryWidth) {
  for (const int width : {1, 2, 4, 8}) {
    ThreadScope scope(width);
    int a = 0, b = 0;
    TaskPool::instance().invoke2([&] { a = 1; }, [&] { b = 2; });
    EXPECT_EQ(a, 1) << "width " << width;
    EXPECT_EQ(b, 2) << "width " << width;
  }
}

TEST(TaskPool, Invoke2PropagatesExceptionsFromEitherLeg) {
  for (const int width : {1, 4}) {
    ThreadScope scope(width);
    auto& pool = TaskPool::instance();
    bool g_ran = false;
    EXPECT_THROW(
        pool.invoke2([] { throw std::runtime_error("f"); },
                     [&] { g_ran = true; }),
        std::runtime_error);
    // At width 1 this is literally `f(); g();` — f's throw abandons g, the
    // serial semantics. A leg actually OFFERED to the pool must complete
    // before the rethrow (g references the caller's stack frame).
    if (width > 1)
      EXPECT_TRUE(g_ran) << "the offered leg must still run before rethrow";
    else
      EXPECT_FALSE(g_ran);
    EXPECT_THROW(pool.invoke2([] {},
                              [] { throw std::runtime_error("g"); }),
                 std::runtime_error);
  }
}

TEST(TaskPool, NestedInvoke2ComputesRecursiveSum) {
  // sum(1..n) by binary splitting, forking at every interior node: stresses
  // nested joins, the fork-floor confinement, and the steal path.
  struct Rec {
    static std::int64_t sum(std::int64_t lo, std::int64_t hi) {
      if (hi - lo <= 4) {
        std::int64_t s = 0;
        for (std::int64_t i = lo; i < hi; ++i) s += i;
        return s;
      }
      const std::int64_t mid = lo + (hi - lo) / 2;
      std::int64_t left = 0, right = 0;
      TaskPool::instance().invoke2([&] { left = sum(lo, mid); },
                                   [&] { right = sum(mid, hi); });
      return left + right;
    }
  };
  for (const int width : {1, 2, 4}) {
    ThreadScope scope(width);
    const std::int64_t n = 10000;
    EXPECT_EQ(Rec::sum(0, n + 1), n * (n + 1) / 2) << "width " << width;
  }
}

TEST(TaskPool, ForEachCoversEveryIndexExactlyOnce) {
  for (const int width : {1, 3, 8}) {
    ThreadScope scope(width);
    const std::ptrdiff_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    TaskPool::instance().for_each(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::ptrdiff_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "width " << width << " i=" << i;
  }
}

TEST(TaskPool, ForEachRunsEpiloguePerExecutorAndHonorsMaxWidth) {
  ThreadScope scope(8);
  std::atomic<int> epilogues{0};
  std::mutex mu;
  std::set<std::thread::id> executors;
  TaskPool::instance().for_each(
      256,
      [&](std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        executors.insert(std::this_thread::get_id());
      },
      [&] { epilogues.fetch_add(1, std::memory_order_relaxed); },
      /*max_width=*/2);
  // At most two executors (the caller and one helper); every executor —
  // even one whose submission was dropped on a full queue — runs the
  // epilogue exactly once, so epilogues == executors that actually ran.
  EXPECT_LE(executors.size(), 2u);
  EXPECT_GE(epilogues.load(), 1);
  EXPECT_LE(epilogues.load(), 2);
}

TEST(TaskPool, ForEachPropagatesBodyException) {
  ThreadScope scope(4);
  EXPECT_THROW(TaskPool::instance().for_each(100,
                                             [&](std::size_t i) {
                                               if (i == 57)
                                                 throw std::runtime_error(
                                                     "body");
                                             }),
               std::runtime_error);
}

TEST(TaskPool, SetConcurrencyClampsToValidRange) {
  auto& pool = TaskPool::instance();
  const int saved = pool.concurrency();
  pool.set_concurrency(-3);
  EXPECT_EQ(pool.concurrency(), 1);
  pool.set_concurrency(TaskPool::kMaxThreads + 100);
  EXPECT_EQ(pool.concurrency(), TaskPool::kMaxThreads);
  pool.set_concurrency(saved);
  EXPECT_EQ(pool.concurrency(), saved);
}

TEST(TaskPool, OnWorkerIsFalseOnCallerTrueOnWorkers) {
  ThreadScope scope(4);
  EXPECT_FALSE(TaskPool::on_worker());
  EXPECT_FALSE(in_parallel_region());
  std::atomic<int> counters[2] = {{0}, {0}};  // [0] on-worker, [1] not
  TaskPool::instance().run_on_workers(
      [](void* p) {
        auto* c = static_cast<std::atomic<int>*>(p);
        c[TaskPool::on_worker() ? 0 : 1].fetch_add(1,
                                                   std::memory_order_relaxed);
      },
      counters);
  EXPECT_EQ(counters[0].load(), 3);  // width 4 = caller + 3 workers
  EXPECT_EQ(counters[1].load(), 0);
}

TEST(TaskPool, RunOnWorkersVisitsDistinctThreads) {
  ThreadScope scope(4);
  struct Ctx {
    std::mutex mu;
    std::set<std::thread::id> ids;
  } ctx;
  TaskPool::instance().run_on_workers(
      [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        std::lock_guard<std::mutex> lock(c->mu);
        c->ids.insert(std::this_thread::get_id());
      },
      &ctx);
  EXPECT_EQ(ctx.ids.size(), 3u);
  EXPECT_EQ(ctx.ids.count(std::this_thread::get_id()), 0u);
}

TEST(TaskPool, DetachedTaskRunsEvenAtWidthOne) {
  // The pool keeps one worker alive at width 1 purely for detached
  // housekeeping (server shard drains must make progress on a 1-CPU box).
  ThreadScope scope(1);
  std::atomic<bool> ran{false};
  TaskPool::Task t;
  t.fn = [](void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_release);
  };
  t.arg = &ran;
  ASSERT_TRUE(TaskPool::instance().submit_detached(&t));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!ran.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "detached task never ran";
    std::this_thread::yield();
  }
}

TEST(TaskPool, ParallelForChunksMatchesSerialSplit) {
  for (const int width : {1, 4}) {
    ThreadScope scope(width);
    const std::ptrdiff_t n = 10000;
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    parallel_for_chunks(n, 64, [&](std::ptrdiff_t lo, std::ptrdiff_t hi) {
      for (std::ptrdiff_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (std::ptrdiff_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1)
          << "width " << width << " i=" << i;
  }
}

}  // namespace
