// The capstone soak of the failure plane (DESIGN.md §11): concurrent
// retrying clients hammer one daemon over BOTH transports — TCP with a
// fault injector on the server side of every accepted connection, loopback
// with a fault injector on the client side — while the injectors corrupt,
// truncate, shred, delay and hard-close on a seeded schedule. The
// assertions are interleaving-independent on purpose (thread timing is not
// deterministic; the fault schedule per transport is): every request
// reaches exactly one terminal outcome, the daemon survives to serve a
// clean connection whose prices are bit-identical to a direct session, and
// the stats stay coherent. CI runs this binary under TSan and ASan.
//
// Fault determinism itself is pinned separately below: the same seed over
// the same operation sequence produces the same faulted byte stream and
// the same counters, with no clock involvement.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/service/client.hpp"
#include "amopt/service/fault.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

// ---------------------------------------------------------------------------
// Fault-injector determinism: the soak's foundation.

// `corrupt` is opt-in per direction: the wire format has no checksum, so
// a silently corrupted REQUEST byte could mutate a request's step count
// into a billion-node lattice the server would faithfully price. Replies
// are safe to corrupt (the worst case is a garbage price or a decode
// diagnostic, both terminal), so only the server->client direction does.
[[nodiscard]] FaultConfig soak_faults(std::uint64_t seed, bool corrupt) {
  FaultConfig f;
  f.seed = seed;
  f.corrupt_byte = corrupt ? 0.02 : 0.0;
  f.truncate_write = 0.02;
  f.shred_write = 0.15;
  f.drop_close = 0.02;
  f.delay = 0.05;
  f.delay_us = std::chrono::microseconds(50);
  return f;
}

// Drive a fixed write/read script through an injector and record what the
// peer received plus the fault counters.
struct ScheduleTrace {
  std::vector<std::byte> received;
  FaultCounters counters;
  int completed_writes = 0;
};

[[nodiscard]] ScheduleTrace run_schedule(std::uint64_t seed) {
  auto [a, b] = loopback_pair();
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.corrupt_byte = 0.5;
  cfg.shred_write = 0.4;
  cfg.truncate_write = 0.05;
  FaultInjectingTransport faulty(std::move(a), cfg);

  ScheduleTrace trace;
  std::vector<std::byte> chunk(64);
  for (int w = 0; w < 20; ++w) {
    std::vector<std::byte> payload(48);
    for (std::size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<std::byte>((w * 31 + static_cast<int>(i)) & 0xff);
    if (!faulty.write_all(payload)) break;  // truncate fault hard-closed
    ++trace.completed_writes;
    // Drain everything the peer can see right now.
    for (;;) {
      bool timed_out = false;
      const std::size_t n =
          b->read_some_for(chunk, std::chrono::microseconds(0), timed_out);
      if (n == 0) break;
      trace.received.insert(trace.received.end(), chunk.begin(),
                            chunk.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  trace.counters = faulty.counters();
  return trace;
}

TEST(FaultInjector, SameSeedSameScheduleSameBytes) {
  const ScheduleTrace r1 = run_schedule(77);
  const ScheduleTrace r2 = run_schedule(77);
  EXPECT_EQ(r1.completed_writes, r2.completed_writes);
  EXPECT_EQ(r1.received, r2.received) << "faults must be a pure function of "
                                         "(seed, operation index)";
  EXPECT_EQ(r1.counters.corrupted, r2.counters.corrupted);
  EXPECT_EQ(r1.counters.shredded, r2.counters.shredded);
  EXPECT_EQ(r1.counters.truncated, r2.counters.truncated);
  EXPECT_GT(r1.counters.corrupted + r1.counters.shredded, 0u)
      << "the schedule actually injected something";

  const ScheduleTrace other = run_schedule(78);
  EXPECT_TRUE(other.received != r1.received ||
              other.counters.corrupted != r1.counters.corrupted)
      << "different seeds should produce different schedules";
}

TEST(FaultInjector, DefaultConfigIsATransparentPassThrough) {
  auto [a, b] = loopback_pair();
  FaultInjectingTransport clean(std::move(a), FaultConfig{});
  std::vector<std::byte> payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i & 0xff);
  ASSERT_TRUE(clean.write_all(payload));
  std::vector<std::byte> got(payload.size());
  std::size_t have = 0;
  while (have < got.size())
    have += b->read_some({got.data() + have, got.size() - have});
  EXPECT_EQ(got, payload);
  const FaultCounters& c = clean.counters();
  EXPECT_EQ(c.corrupted + c.truncated + c.shredded + c.dropped, 0u);
}

// ---------------------------------------------------------------------------
// The soak rig: one daemon, two transports, four chaotic clients.

// Client-side decorator that folds its injector's counters into a shared
// tally on destruction (the Client destroys transports on reconnect, so
// counters must outlive the transport to be aggregated).
class TalliedFaultTransport final : public Transport {
 public:
  TalliedFaultTransport(std::unique_ptr<Transport> inner, FaultConfig cfg,
                        std::mutex* mu, FaultCounters* sink)
      : fault_(std::move(inner), cfg), mu_(mu), sink_(sink) {}
  ~TalliedFaultTransport() override {
    const FaultCounters& c = fault_.counters();
    const std::lock_guard<std::mutex> lock(*mu_);
    sink_->writes += c.writes;
    sink_->reads += c.reads;
    sink_->corrupted += c.corrupted;
    sink_->truncated += c.truncated;
    sink_->shredded += c.shredded;
    sink_->dropped += c.dropped;
    sink_->delayed += c.delayed;
  }
  [[nodiscard]] std::size_t read_some(std::span<std::byte> dst) override {
    return fault_.read_some(dst);
  }
  [[nodiscard]] std::size_t read_some_for(std::span<std::byte> dst,
                                          std::chrono::microseconds timeout,
                                          bool& timed_out) override {
    return fault_.read_some_for(dst, timeout, timed_out);
  }
  [[nodiscard]] bool write_all(std::span<const std::byte> src) override {
    return fault_.write_all(src);
  }
  void close() override { fault_.close(); }

 private:
  FaultInjectingTransport fault_;
  std::mutex* mu_;
  FaultCounters* sink_;
};

struct ChaosRig {
  explicit ChaosRig(std::uint64_t seed_in) : seed(seed_in) {
    ServerConfig cfg;
    cfg.shards = 2;
    server = std::make_unique<Server>(cfg);
    listener = std::make_unique<TcpListener>(0);
    acceptor = std::thread([this] {
      while (auto conn = listener->accept()) {
        std::unique_ptr<Transport> t = std::move(conn);
        if (chaos.load())
          t = std::make_unique<TalliedFaultTransport>(
              std::move(t), soak_faults(next_injector_seed(), true), &mu,
              &tally);
        const std::lock_guard<std::mutex> lock(mu);
        serves.emplace_back(
            [this, tt = std::move(t)] { server->serve(*tt); });
      }
    });
  }

  [[nodiscard]] std::uint64_t next_injector_seed() {
    return seed * 1000003u + dials.fetch_add(1, std::memory_order_relaxed);
  }

  // Loopback dial: the CLIENT side wears the injector, the daemon side is
  // served clean on its own thread.
  [[nodiscard]] std::unique_ptr<Transport> dial_loopback() {
    auto [a, b] = loopback_pair();
    {
      const std::lock_guard<std::mutex> lock(mu);
      serves.emplace_back([this, tt = std::move(b)] { server->serve(*tt); });
    }
    return std::make_unique<TalliedFaultTransport>(
        std::move(a), soak_faults(next_injector_seed(), false), &mu, &tally);
  }

  // TCP dial: the client end is clean; the acceptor wrapped the server end.
  [[nodiscard]] std::unique_ptr<Transport> dial_tcp() {
    return tcp_connect("127.0.0.1", listener->port());
  }

  void shutdown() {
    listener->close();
    acceptor.join();
    std::vector<std::thread> pending;
    {
      const std::lock_guard<std::mutex> lock(mu);
      pending.swap(serves);
    }
    for (std::thread& th : pending) th.join();
    server->stop();
  }

  std::uint64_t seed;
  std::unique_ptr<Server> server;
  std::unique_ptr<TcpListener> listener;
  std::thread acceptor;
  std::atomic<bool> chaos{true};
  std::atomic<std::uint64_t> dials{0};
  std::mutex mu;  // guards serves + tally
  std::vector<std::thread> serves;
  FaultCounters tally;
};

[[nodiscard]] std::vector<PricingRequest> chaos_chain(int thread_id,
                                                      int call) {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.right = (thread_id % 2) ? Right::call : Right::put;
  q.T = 64;
  for (int i = 0; i < 7; ++i) {
    q.spec.K = 100.0 + 5.0 * ((thread_id * 7 + call + i) % 12);
    reqs.push_back(q);
  }
  // One poisoned item per call: its terminal outcome must be a per-item
  // verdict, never a dropped batch (ties the validation plane into the
  // soak).
  PricingRequest bad = q;
  bad.spec.S = std::numeric_limits<double>::quiet_NaN();
  reqs.push_back(bad);
  return reqs;
}

struct ClientTally {
  std::uint64_t ok = 0, overloaded = 0, deadline = 0, error = 0, other = 0;
  std::uint64_t calls = 0, reconnects = 0, attempts = 0;
};

void chaos_client(ChaosRig& rig, int id, ClientTally& tally) {
  // ids 0-1 ride TCP (reply corruption possible: a garbage price can come
  // back wearing Status::ok — no checksum on the wire); ids 2-3 ride
  // loopback whose faults are corruption-free, so their ok prices are
  // authentic and must be finite.
  const bool replies_authentic = id >= 2;
  ClientConfig cfg;
  if (id < 2) {
    cfg.connect = [&rig] { return rig.dial_tcp(); };
  } else {
    cfg.connect = [&rig] { return rig.dial_loopback(); };
  }
  cfg.max_attempts = 6;
  cfg.backoff_initial = std::chrono::microseconds(200);
  cfg.backoff_max = std::chrono::milliseconds(5);
  cfg.jitter_seed = rig.seed * 31 + static_cast<std::uint64_t>(id);
  Client client(std::move(cfg));

  for (int call = 0; call < 5; ++call) {
    const std::vector<PricingRequest> reqs = chaos_chain(id, call);
    std::vector<PricingResult> out;
    client.price_many(reqs, out, std::chrono::seconds(5));
    ++tally.calls;
    tally.reconnects += client.last_call().reconnects;
    tally.attempts += client.last_call().attempts;
    ASSERT_EQ(out.size(), reqs.size());
    for (const PricingResult& r : out) {
      switch (r.status) {
        case Status::ok:
          ++tally.ok;
          if (replies_authentic) {
            EXPECT_TRUE(std::isfinite(r.price));
          }
          break;
        case Status::overloaded:
          ++tally.overloaded;
          EXPECT_FALSE(r.message.empty());
          break;
        case Status::deadline_exceeded:
          ++tally.deadline;
          break;
        case Status::error:
          ++tally.error;
          EXPECT_FALSE(r.message.empty());
          break;
        default:
          // unsupported / failed_to_converge are terminal too, just not
          // expected from these chains.
          ++tally.other;
          break;
      }
    }
  }
  client.disconnect();
}

TEST(ChaosSoak, EveryRequestEndsTerminallyAndTheDaemonSurvives) {
  ThreadScope width(4);
  std::uint64_t faults_injected_total = 0;

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChaosRig rig(seed);

    std::vector<ClientTally> tallies(4);
    std::vector<std::thread> clients;
    for (int id = 0; id < 4; ++id)
      clients.emplace_back(
          [&rig, id, &t = tallies[id]] { chaos_client(rig, id, t); });
    for (std::thread& th : clients) th.join();

    // Exactly-one-terminal-outcome: every submitted item was counted once
    // in a terminal bucket (price_many resizes out and fills every slot;
    // the buckets cover the whole Status enum).
    std::uint64_t total = 0, ok = 0, errors = 0;
    for (const ClientTally& t : tallies) {
      total += t.ok + t.overloaded + t.deadline + t.error + t.other;
      ok += t.ok;
      errors += t.error;
      EXPECT_EQ(t.calls, 5u);
    }
    EXPECT_EQ(total, 4u * 5u * 8u)
        << "seed " << seed << ": every request must end exactly once";
    EXPECT_GT(ok, 0u) << "seed " << seed
                      << ": the soak must complete some work";
    EXPECT_GT(errors, 0u) << "seed " << seed
                          << ": the poisoned items end as per-item errors";

    // The daemon survived: a clean post-soak connection prices a chain
    // bit-identically to a direct session.
    rig.chaos.store(false);
    ClientConfig clean_cfg;
    clean_cfg.connect = [&rig] { return rig.dial_tcp(); };
    Client clean(std::move(clean_cfg));
    const std::vector<PricingRequest> probe = chaos_chain(0, 0);
    std::vector<PricingResult> out;
    clean.price_many(probe, out, std::chrono::seconds(30));
    Pricer direct;
    const std::vector<PricingResult> want = direct.price_many(probe);
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(out[i].status, want[i].status) << "seed " << seed;
      if (want[i].status == Status::ok) {
        EXPECT_EQ(out[i].price, want[i].price)
            << "seed " << seed << ": the daemon must still price exactly";
      }
    }
    clean.disconnect();

    const Server::Stats st = rig.server->stats();
    EXPECT_GE(st.completed, ok)
        << "every ok the clients saw was priced by the daemon";
    std::uint64_t shard_accepted = 0;
    for (const Server::ShardCounters& sc : st.shard_counters)
      shard_accepted += sc.accepted;
    EXPECT_EQ(shard_accepted, st.submitted) << "stats must stay coherent";

    rig.shutdown();
    {
      const std::lock_guard<std::mutex> lock(rig.mu);
      faults_injected_total += rig.tally.corrupted + rig.tally.truncated +
                               rig.tally.shredded + rig.tally.dropped;
    }
  }

  EXPECT_GT(faults_injected_total, 0u)
      << "three seeds of soak must actually inject faults";
}

}  // namespace
