// The SIMD dispatch layer: every kernel table available on the host must
// agree with the scalar table (within the documented cross-path FFT
// round-off, DESIGN.md §4), the scalar dispatch level must stay
// bit-identical to the pre-SIMD implementation (asserted against a verbatim
// copy of that implementation below), and every vector kernel must fall
// back correctly on deliberately misaligned operands. CI additionally
// reruns the whole suite under AMOPT_SIMD=scalar / avx2 (the env-forced
// form of the overrides exercised here through set_level).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

#include "amopt/common/aligned.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/fft/fft.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/simd/kernels.hpp"
#include "amopt/simd/simd.hpp"

namespace {

using namespace amopt;
using simd::cplx;
using simd::Level;

// Cross-path agreement bound: identical formulas evaluated with identical
// per-element association, differing only in multiply-add contraction
// (AVX-512's FMA vs separate rounding). Relative to the data magnitude.
constexpr double kPathTol = 1e-12;

/// Every level compiled in AND executable on this host, scalar first.
[[nodiscard]] std::vector<Level> available_levels() {
  std::vector<Level> lvls{Level::scalar};
  for (Level l : {Level::avx2, Level::avx512})
    if (static_cast<int>(l) <= static_cast<int>(simd::max_supported()))
      lvls.push_back(l);
  return lvls;
}

[[nodiscard]] std::vector<double> random_real(std::size_t n,
                                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

[[nodiscard]] std::vector<cplx> random_complex(std::size_t n,
                                               std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{d(rng), d(rng)};
  return v;
}

/// Restore the default dispatch level even if a test fails mid-way.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::set_level(simd::max_supported()); }
};

TEST_F(SimdTest, LevelParsingAndClamping) {
  Level lvl = Level::scalar;
  EXPECT_TRUE(simd::parse_level("scalar", lvl));
  EXPECT_EQ(lvl, Level::scalar);
  EXPECT_TRUE(simd::parse_level("avx2", lvl));
  EXPECT_EQ(lvl, Level::avx2);
  EXPECT_TRUE(simd::parse_level("avx512", lvl));
  EXPECT_EQ(lvl, Level::avx512);
  EXPECT_TRUE(simd::parse_level("avx512f", lvl));
  EXPECT_EQ(lvl, Level::avx512);
  EXPECT_FALSE(simd::parse_level("sse9", lvl));
  EXPECT_FALSE(simd::parse_level("", lvl));

  // set_level never installs more than the host supports and reports what
  // it actually installed.
  const Level eff = simd::set_level(Level::avx512);
  EXPECT_LE(static_cast<int>(eff), static_cast<int>(simd::max_supported()));
  EXPECT_EQ(simd::active(), eff);
  EXPECT_EQ(simd::set_level(Level::scalar), Level::scalar);
  EXPECT_EQ(simd::active(), Level::scalar);
}

// ---------------------------------------------------------------------
// Per-kernel agreement of every available table with the scalar table,
// on both aligned and deliberately misaligned operands.
// ---------------------------------------------------------------------

TEST_F(SimdTest, PointwiseKernelsAgreeAcrossPathsAndAlignments) {
  const std::size_t n = 1027;  // odd: exercises every tail loop
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t off : {0u, 1u}) {  // 1 element = 8B: misaligned
      // cmul
      {
        aligned_vector<cplx> a0(n + off), b0(n + off);
        auto init = random_complex(n + off, 11);
        std::copy(init.begin(), init.end(), a0.begin());
        auto binit = random_complex(n + off, 12);
        std::copy(binit.begin(), binit.end(), b0.begin());
        std::vector<cplx> want(a0.begin() + off, a0.end());
        for (std::size_t i = 0; i < n; ++i) want[i] *= b0[i + off];
        k.cmul(a0.data() + off, b0.data() + off, n);
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_NEAR(std::abs(a0[i + off] - want[i]), 0.0, kPathTol)
              << simd::to_string(lvl) << " off=" << off << " i=" << i;
      }
      // csquare vs this level's cmul(a, a-copy): bit-identical at the
      // scalar level (the contract the aliased convolution fast path
      // leans on); vector levels agree within the documented cross-path
      // tolerance (the AVX-512 TU may contract the two scalar tails'
      // multiply-add chains differently).
      {
        aligned_vector<cplx> a0(n + off), b0(n + off);
        auto init = random_complex(n + off, 13);
        std::copy(init.begin(), init.end(), a0.begin());
        std::copy(init.begin(), init.end(), b0.begin());
        aligned_vector<cplx> sq = a0;
        k.cmul(a0.data() + off, b0.data() + off, n);
        k.csquare(sq.data() + off, n);
        for (std::size_t i = 0; i < n; ++i) {
          if (lvl == Level::scalar) {
            ASSERT_EQ(sq[i + off].real(), a0[i + off].real())
                << " off=" << off << " i=" << i;
            ASSERT_EQ(sq[i + off].imag(), a0[i + off].imag());
          } else {
            ASSERT_NEAR(std::abs(sq[i + off] - a0[i + off]), 0.0, kPathTol)
                << simd::to_string(lvl) << " off=" << off << " i=" << i;
          }
        }
      }
      // correlate_taps / stencil3
      {
        const auto in = random_real(n + 2 + off, 21);
        const double taps[3] = {0.3, 0.5, 0.2};
        std::vector<double> want(n);
        for (std::size_t j = 0; j < n; ++j)
          want[j] = taps[0] * in[off + j] + taps[1] * in[off + j + 1] +
                    taps[2] * in[off + j + 2];
        std::vector<double> got(n, 0.0);
        k.correlate_taps(in.data() + off, taps, 3, got.data(), n);
        for (std::size_t j = 0; j < n; ++j)
          EXPECT_NEAR(got[j], want[j], kPathTol);
        std::fill(got.begin(), got.end(), 0.0);
        k.stencil3(in.data() + off, taps[0], taps[1], taps[2], got.data(), n);
        for (std::size_t j = 0; j < n; ++j)
          EXPECT_NEAR(got[j], want[j], kPathTol);
      }
      // de/interleave round trip + scale2
      {
        const auto z = random_complex(n + off, 31);
        aligned_vector<double> re(n + off), im(n + off);
        k.deinterleave(z.data() + off, re.data() + off, im.data() + off, n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(re[i + off], z[i + off].real());
          ASSERT_EQ(im[i + off], z[i + off].imag());
        }
        k.scale2(re.data() + off, im.data() + off, n, 0.5);
        aligned_vector<cplx> back(n + off);
        k.interleave(re.data() + off, im.data() + off, back.data() + off, n);
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(back[i + off], 0.5 * z[i + off]);
      }
    }
  }
}

TEST_F(SimdTest, FftStageKernelsMatchScalarTable) {
  const simd::Kernels& ref = simd::kernels(Level::scalar);
  for (const Level lvl : available_levels()) {
    if (lvl == Level::scalar) continue;
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t n : {8u, 16u, 24u, 64u, 256u, 1024u}) {
      // Stage twiddles for a few half-sizes, in the SoA layout. h = 2 (the
      // odd-log2 stage, vectorized by the 2x4 half-transpose kernel) is
      // exercised at sizes that leave 0 or 1 trailing blocks.
      for (std::size_t h :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, n / 4}) {
        // Kernel contract: n a multiple of the 4h block, h a power of two
        // (n = 24 exists in the sweep precisely to hand the h = 2 kernel an
        // odd trailing block).
        if (4 * h > n || !is_pow2(h) || n % (4 * h) != 0) continue;
        aligned_vector<double> w(6 * h);
        const double theta = -std::numbers::pi / static_cast<double>(2 * h);
        for (std::size_t j = 0; j < h; ++j) {
          const double a = theta * static_cast<double>(j);
          w[0 * h + j] = std::cos(a);
          w[1 * h + j] = std::sin(a);
          w[2 * h + j] = std::cos(2 * a);
          w[3 * h + j] = std::sin(2 * a);
          w[4 * h + j] = std::cos(3 * a);
          w[5 * h + j] = std::sin(3 * a);
        }
        for (const bool inverse : {false, true}) {
          aligned_vector<double> re_a(n), im_a(n), re_b(n), im_b(n);
          const auto seed_re = random_real(n, 41);
          const auto seed_im = random_real(n, 42);
          std::copy(seed_re.begin(), seed_re.end(), re_a.begin());
          std::copy(seed_im.begin(), seed_im.end(), im_a.begin());
          re_b = re_a;
          im_b = im_a;
          ref.radix4_pass(re_a.data(), im_a.data(), n, h, w.data(), inverse);
          k.radix4_pass(re_b.data(), im_b.data(), n, h, w.data(), inverse);
          for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(re_b[i], re_a[i], kPathTol)
                << simd::to_string(lvl) << " n=" << n << " h=" << h;
            EXPECT_NEAR(im_b[i], im_a[i], kPathTol);
          }
          re_b = re_a;  // also radix2 on fresh (post-pass) data
          im_b = im_a;
          ref.radix2_pass(re_a.data(), im_a.data(), n);
          k.radix2_pass(re_b.data(), im_b.data(), n);
          for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(re_b[i], re_a[i], kPathTol);
            EXPECT_NEAR(im_b[i], im_a[i], kPathTol);
          }
        }
      }
    }
  }
}

TEST_F(SimdTest, RfftPairKernelsMatchScalarTable) {
  const simd::Kernels& ref = simd::kernels(Level::scalar);
  for (const Level lvl : available_levels()) {
    if (lvl == Level::scalar) continue;
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t m : {4u, 8u, 32u, 512u}) {
      std::vector<cplx> tw(m / 2 + 1);
      for (std::size_t i = 0; i <= m / 2; ++i) {
        const double a =
            -2.0 * std::numbers::pi * static_cast<double>(i) /
            static_cast<double>(2 * m);
        tw[i] = cplx{std::cos(a), std::sin(a)};
      }
      for (const bool retangle : {false, true}) {
        auto spec_a = random_complex(m + 1, 51);
        auto spec_b = spec_a;
        if (retangle) {
          ref.rfft_retangle(spec_a.data(), tw.data(), m);
          k.rfft_retangle(spec_b.data(), tw.data(), m);
        } else {
          ref.rfft_untangle(spec_a.data(), tw.data(), m);
          k.rfft_untangle(spec_b.data(), tw.data(), m);
        }
        for (std::size_t i = 0; i <= m; ++i)
          EXPECT_NEAR(std::abs(spec_b[i] - spec_a[i]), 0.0, kPathTol)
              << simd::to_string(lvl) << " m=" << m
              << (retangle ? " retangle" : " untangle");
      }
    }
  }
}

TEST_F(SimdTest, DeinterleaveRevMatchesScalarBitReversal) {
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t n : {8u, 64u, 4096u}) {
      std::size_t log2n = 0;
      while ((std::size_t{1} << log2n) < n) ++log2n;
      std::vector<std::uint32_t> rev(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::size_t r = 0;
        for (std::size_t b = 0; b < log2n; ++b)
          r |= ((i >> b) & 1u) << (log2n - 1 - b);
        rev[i] = static_cast<std::uint32_t>(r);
      }
      const auto z = random_complex(n, 61);
      aligned_vector<double> re(n), im(n);
      k.deinterleave_rev(z.data(), rev.data(), re.data(), im.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(re[i], z[rev[i]].real()) << simd::to_string(lvl);
        ASSERT_EQ(im[i], z[rev[i]].imag());
      }
    }
  }
}

// ---------------------------------------------------------------------
// Scalar-level bit-identity with the pre-SIMD implementation.
// ---------------------------------------------------------------------

/// Verbatim copy of the pre-SIMD radix-4 transform (twiddle construction,
/// bit reversal, stage structure, butterfly expressions) as it stood before
/// the dispatch layer. The library's scalar level must reproduce it BIT FOR
/// BIT — that is the contract that lets AMOPT_SIMD=scalar reproduce any
/// historical result exactly.
class ReferencePlan {
 public:
  explicit ReferencePlan(std::size_t n) : n_(n), log2n_(0) {
    while ((std::size_t{1} << log2n_) < n_) ++log2n_;
    std::size_t total = 0;
    for (std::size_t h = (log2n_ & 1) ? 2 : 1; h < n_; h <<= 2) total += 3 * h;
    twiddle4_.resize(total);
    cplx* w = twiddle4_.data();
    for (std::size_t h = (log2n_ & 1) ? 2 : 1; h < n_; h <<= 2) {
      const double theta = -std::numbers::pi / static_cast<double>(2 * h);
      for (std::size_t j = 0; j < h; ++j) {
        const double a = theta * static_cast<double>(j);
        w[3 * j + 0] = cplx{std::cos(a), std::sin(a)};
        w[3 * j + 1] = cplx{std::cos(2 * a), std::sin(2 * a)};
        w[3 * j + 2] = cplx{std::cos(3 * a), std::sin(3 * a)};
      }
      w += 3 * h;
    }
    bitrev_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < log2n_; ++b)
        r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
      bitrev_[i] = static_cast<std::uint32_t>(r);
    }
  }

  void transform(cplx* data, bool inverse) const {
    if (n_ <= 1) return;
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t r = bitrev_[i];
      if (i < r) std::swap(data[i], data[r]);
    }
    std::size_t h = 1;
    if (log2n_ & 1) {
      for (std::size_t base = 0; base < n_; base += 2) {
        const cplx t = data[base + 1];
        data[base + 1] = data[base] - t;
        data[base] += t;
      }
      h = 2;
    }
    const cplx* w = twiddle4_.data();
    for (; h < n_; h <<= 2) {
      for (std::size_t base = 0; base < n_; base += 4 * h) {
        for (std::size_t j = 0; j < h; ++j) {
          cplx w1 = w[3 * j + 0];
          cplx w2 = w[3 * j + 1];
          cplx w3 = w[3 * j + 2];
          if (inverse) {
            w1 = std::conj(w1);
            w2 = std::conj(w2);
            w3 = std::conj(w3);
          }
          cplx& ra = data[base + j];
          cplx& rb = data[base + j + h];
          cplx& rc = data[base + j + 2 * h];
          cplx& rd = data[base + j + 3 * h];
          const cplx bb = rb * w2;
          const cplx cc = rc * w1;
          const cplx dd = rd * w3;
          const cplx a1 = ra + bb;
          const cplx b1 = ra - bb;
          const cplx s = cc + dd;
          const cplx t = cc - dd;
          const cplx it = inverse ? cplx{-t.imag(), t.real()}
                                  : cplx{t.imag(), -t.real()};
          ra = a1 + s;
          rc = a1 - s;
          rb = b1 + it;
          rd = b1 - it;
        }
      }
      w += 3 * h;
    }
    if (inverse) {
      const double inv_n = 1.0 / static_cast<double>(n_);
      for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
    }
  }

 private:
  std::size_t n_;
  std::size_t log2n_;
  std::vector<cplx> twiddle4_;
  std::vector<std::uint32_t> bitrev_;
};

TEST_F(SimdTest, ScalarLevelBitIdenticalToPreSimdTransform) {
  simd::set_level(Level::scalar);
  for (const std::size_t n : {4u, 8u, 64u, 1024u, 4096u, 8192u}) {
    const ReferencePlan ref(n);
    auto want = random_complex(n, 71);
    auto got = want;
    ref.transform(want.data(), /*inverse=*/false);
    fft::plan_for(n).forward(got.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i].real(), want[i].real()) << "n=" << n << " i=" << i;
      ASSERT_EQ(got[i].imag(), want[i].imag()) << "n=" << n << " i=" << i;
    }
    ref.transform(want.data(), /*inverse=*/true);
    fft::plan_for(n).inverse(got.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i].real(), want[i].real()) << "n=" << n << " i=" << i;
      ASSERT_EQ(got[i].imag(), want[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end dispatch parity.
// ---------------------------------------------------------------------

TEST_F(SimdTest, TransformParityAcrossLevels) {
  for (const std::size_t n : {64u, 1024u, 8192u}) {
    simd::set_level(Level::scalar);
    auto want = random_complex(n, 81);
    fft::plan_for(n).forward(want.data());
    double scale = 0.0;
    for (const cplx& x : want) scale = std::max(scale, std::abs(x));
    for (const Level lvl : available_levels()) {
      if (lvl == Level::scalar) continue;
      simd::set_level(lvl);
      auto got = random_complex(n, 81);
      fft::plan_for(n).forward(got.data());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, kPathTol * scale)
            << simd::to_string(lvl) << " n=" << n;
    }
  }
}

TEST_F(SimdTest, ConvolutionAndPriceParityAcrossLevels) {
  const auto a = random_real(3000, 91);
  const auto b = random_real(2000, 92);
  simd::set_level(Level::scalar);
  const auto want_conv =
      conv::convolve_full(a, b, {conv::Policy::Path::fft});
  const double want_price =
      pricing::bopm::american_call_fft(pricing::paper_spec(), 512);
  for (const Level lvl : available_levels()) {
    if (lvl == Level::scalar) continue;
    simd::set_level(lvl);
    const auto got_conv =
        conv::convolve_full(a, b, {conv::Policy::Path::fft});
    ASSERT_EQ(got_conv.size(), want_conv.size());
    double scale = 1.0;
    for (double x : want_conv) scale = std::max(scale, std::abs(x));
    for (std::size_t i = 0; i < want_conv.size(); ++i)
      EXPECT_NEAR(got_conv[i], want_conv[i], 1e-11 * scale)
          << simd::to_string(lvl);
    const double got_price =
        pricing::bopm::american_call_fft(pricing::paper_spec(), 512);
    EXPECT_NEAR(got_price, want_price, 1e-10 * want_price)
        << simd::to_string(lvl);
  }
}

TEST_F(SimdTest, SpectralConvolutionParityAcrossLevels) {
  // The spectral kernel path (precomputed RealSpectrum consumed by the
  // correlate/convolve overloads, and the KernelCache spectrum tier) must
  // agree with the transform-per-call path at every dispatch level: bit-
  // identical WITHIN a level (the cached bins are the bins the in-call
  // transform produces), and within the documented 1e-12 cross-path
  // tolerance BETWEEN levels.
  const auto in = random_real(3000, 101);
  const auto kernel = random_real(400, 102);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  const std::size_t n = conv::correlate_fft_size(n_out, kernel.size());

  simd::set_level(Level::scalar);
  std::vector<double> want(n_out);
  conv::correlate_valid(in, kernel, want, {conv::Policy::Path::fft});
  double scale = 1.0;
  for (double x : want) scale = std::max(scale, std::abs(x));

  for (const Level lvl : available_levels()) {
    simd::set_level(lvl);
    conv::Workspace ws;
    const fft::RealSpectrum kspec =
        conv::kernel_spectrum(kernel, n, /*reversed=*/true, ws);
    std::vector<double> spectral(n_out), timedomain(n_out);
    conv::correlate_valid(in, kspec, spectral, ws);
    conv::correlate_valid(in, kernel, timedomain, ws,
                          {conv::Policy::Path::fft});
    for (std::size_t i = 0; i < n_out; ++i) {
      ASSERT_EQ(spectral[i], timedomain[i])
          << simd::to_string(lvl) << " i=" << i;  // within-level: same bits
      EXPECT_NEAR(spectral[i], want[i], kPathTol * scale)
          << simd::to_string(lvl) << " i=" << i;  // cross-level: 1e-12
    }
  }
}

TEST_F(SimdTest, AliasedSquaringBitIdenticalAtScalarLevel) {
  // The acceptance contract of the convolve_full(a, a) fast path: at the
  // scalar level (csquare IS cmul(a, a) bit for bit) the one-transform
  // square must reproduce the historical two-transform product exactly.
  simd::set_level(Level::scalar);
  for (const std::size_t n : {33u, 1000u, 4096u}) {
    const auto a = random_real(n, 111);
    const std::vector<double> a_copy = a;  // distinct storage, same bits
    const auto squared = conv::convolve_full(a, a, {conv::Policy::Path::fft});
    const auto product =
        conv::convolve_full(a, a_copy, {conv::Policy::Path::fft});
    ASSERT_EQ(squared.size(), product.size());
    for (std::size_t i = 0; i < squared.size(); ++i)
      ASSERT_EQ(squared[i], product[i]) << "n=" << n << " i=" << i;
  }
}

TEST_F(SimdTest, CorrelateTaps2RowScalarIsBitIdenticalToTwoSweeps) {
  // The fused two-step sweep must replay exactly two single-row sweeps at
  // the scalar level (the solve_base q-evolution bit-identity rests on it).
  const simd::Kernels& k = simd::tables::scalar;
  for (const std::size_t ntaps : {2u, 3u, 5u}) {
    for (const std::size_t n_mid : {9u, 64u, 700u, 1321u}) {
      const std::size_t n_out = n_mid - (ntaps - 1);
      const auto in = random_real(n_mid + ntaps - 1, 21);
      const auto taps = random_real(ntaps, 22);
      std::vector<double> mid_ref(n_mid), out_ref(n_out);
      k.correlate_taps(in.data(), taps.data(), ntaps, mid_ref.data(), n_mid);
      k.correlate_taps(mid_ref.data(), taps.data(), ntaps, out_ref.data(),
                       n_out);
      std::vector<double> mid(n_mid), out(n_out);
      k.correlate_taps_2row(in.data(), taps.data(), ntaps, mid.data(),
                            out.data(), n_mid, n_out);
      for (std::size_t j = 0; j < n_mid; ++j)
        ASSERT_EQ(mid[j], mid_ref[j]) << "mid ntaps=" << ntaps << " j=" << j;
      for (std::size_t j = 0; j < n_out; ++j)
        ASSERT_EQ(out[j], out_ref[j]) << "out ntaps=" << ntaps << " j=" << j;
    }
  }
}

TEST_F(SimdTest, CorrelateTaps2RowIsBitIdenticalToTwoSweepsAtEveryLevel) {
  // Not just close: at EVERY dispatch level the fused kernel must reproduce
  // two same-level single-row sweeps bit for bit. On FMA levels the vector
  // and scalar lanes round differently, so this pins the partition-identity
  // property the solvers' arena/heap plane parity rests on. Cross-level
  // agreement (scalar vs vector) is covered at kPathTol.
  const simd::Kernels& scalar_ref = simd::tables::scalar;
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t ntaps : {2u, 3u}) {
      for (const std::size_t n_mid : {17u, 530u, 1333u}) {
        // n_out deliberately SHORTER than the maximum (the solver clips the
        // speculative second row at the boundary), plus the zero case and
        // non-multiple-of-8 counts to stress the chunk alignment.
        for (const std::size_t n_out :
             {std::size_t{0}, n_mid / 3, n_mid / 3 + 3,
              n_mid - (ntaps - 1)}) {
          const auto in = random_real(n_mid + ntaps - 1, 31);
          const auto taps = random_real(ntaps, 32);
          std::vector<double> mid_ref(n_mid), out_ref(n_out);
          k.correlate_taps(in.data(), taps.data(), ntaps, mid_ref.data(),
                           n_mid);
          k.correlate_taps(mid_ref.data(), taps.data(), ntaps, out_ref.data(),
                           n_out);
          std::vector<double> mid(n_mid), out(n_out);
          k.correlate_taps_2row(in.data(), taps.data(), ntaps, mid.data(),
                                out.data(), n_mid, n_out);
          for (std::size_t j = 0; j < n_mid; ++j)
            ASSERT_EQ(mid[j], mid_ref[j])
                << simd::to_string(lvl) << " mid j=" << j;
          for (std::size_t j = 0; j < n_out; ++j)
            ASSERT_EQ(out[j], out_ref[j])
                << simd::to_string(lvl) << " out j=" << j;
          // Cross-level sanity vs the scalar table.
          std::vector<double> mid_s(n_mid), out_s(n_out);
          scalar_ref.correlate_taps_2row(in.data(), taps.data(), ntaps,
                                         mid_s.data(), out_s.data(), n_mid,
                                         n_out);
          for (std::size_t j = 0; j < n_out; ++j)
            ASSERT_NEAR(out[j], out_s[j], kPathTol)
                << simd::to_string(lvl) << " xlevel j=" << j;
        }
      }
    }
  }
}

TEST_F(SimdTest, Stencil32RowIsBitIdenticalToTwoSweepsAtEveryLevel) {
  // Same contract as the correlate fusion, for the BSM FDM stencil: at
  // EVERY level the fused kernel must reproduce two same-level stencil3
  // sweeps bit for bit (solve_base pairs its base-case steps through it).
  const simd::Kernels& scalar_ref = simd::tables::scalar;
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t n_mid : {9u, 17u, 530u, 1333u}) {
      for (const std::size_t n_out :
           {std::size_t{0}, n_mid / 3, n_mid / 3 + 3, n_mid - 2}) {
        const auto in = random_real(n_mid + 2, 51);
        const auto taps = random_real(3, 52);
        const double b = taps[0], c = taps[1], a = taps[2];
        std::vector<double> mid_ref(n_mid), out_ref(n_out);
        k.stencil3(in.data(), b, c, a, mid_ref.data(), n_mid);
        k.stencil3(mid_ref.data(), b, c, a, out_ref.data(), n_out);
        std::vector<double> mid(n_mid), out(n_out);
        k.stencil3_2row(in.data(), b, c, a, mid.data(), out.data(), n_mid,
                        n_out);
        for (std::size_t j = 0; j < n_mid; ++j)
          ASSERT_EQ(mid[j], mid_ref[j])
              << simd::to_string(lvl) << " mid j=" << j;
        for (std::size_t j = 0; j < n_out; ++j)
          ASSERT_EQ(out[j], out_ref[j])
              << simd::to_string(lvl) << " out j=" << j;
        std::vector<double> mid_s(n_mid), out_s(n_out);
        scalar_ref.stencil3_2row(in.data(), b, c, a, mid_s.data(),
                                 out_s.data(), n_mid, n_out);
        for (std::size_t j = 0; j < n_out; ++j)
          ASSERT_NEAR(out[j], out_s[j], kPathTol)
              << simd::to_string(lvl) << " xlevel j=" << j;
      }
    }
  }
}

TEST_F(SimdTest, Stencil32RowPreservesNegativeZeroAtEveryLevel) {
  // The -0.0 corner that rules out routing this sweep through the
  // correlate kernels: with all -0.0 input and positive taps every product
  // is -0.0 and the unseeded stencil3 expression keeps
  // (-0.0 + -0.0) + -0.0 = -0.0 in both rows, while a 0.0-seeded
  // accumulation (correlate_taps) flushes it to +0.0. The fused kernel
  // must keep the sign bit in BOTH rows at every level.
  const std::size_t n_mid = 67, n_out = 65;
  const std::vector<double> in(n_mid + 2, -0.0);
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    std::vector<double> mid(n_mid, 42.0), out(n_out, 42.0);
    k.stencil3_2row(in.data(), 1.0, 2.0, 3.0, mid.data(), out.data(), n_mid,
                    n_out);
    for (std::size_t j = 0; j < n_mid; ++j) {
      ASSERT_EQ(mid[j], 0.0) << simd::to_string(lvl) << " j=" << j;
      ASSERT_TRUE(std::signbit(mid[j]))
          << simd::to_string(lvl) << " mid j=" << j << " lost -0.0";
    }
    for (std::size_t j = 0; j < n_out; ++j) {
      ASSERT_EQ(out[j], 0.0) << simd::to_string(lvl) << " j=" << j;
      ASSERT_TRUE(std::signbit(out[j]))
          << simd::to_string(lvl) << " out j=" << j << " lost -0.0";
    }
    // The seeded correlate kernel on the same data flushes the sign — the
    // behavioral difference this kernel exists for.
    const double taps[3] = {1.0, 2.0, 3.0};
    std::vector<double> flushed(n_mid, 42.0);
    k.correlate_taps(in.data(), taps, 3, flushed.data(), n_mid);
    ASSERT_FALSE(std::signbit(flushed[0]));
  }
}

TEST_F(SimdTest, BsDpmAgreesAcrossLevels) {
  // The d± geometry kernel is pure mul/add; scalar and AVX2 (no FMA in
  // that TU) are bit-identical, AVX-512 may contract (logz+drift)*inv_vs
  // into the following add/sub and sits within kPathTol.
  for (const std::size_t n : {1u, 7u, 64u, 257u}) {
    const auto logz = random_real(n, 61);
    const auto drift_t = random_real(n, 62);
    auto inv_vs = random_real(n, 63);
    auto half_vs = random_real(n, 64);
    for (auto& v : inv_vs) v = 0.5 + std::abs(v) * 4.0;
    for (auto& v : half_vs) v = 0.01 + std::abs(v);
    std::vector<double> dp_ref(n), dm_ref(n);
    simd::tables::scalar.bs_dpm(logz.data(), drift_t.data(), inv_vs.data(),
                                half_vs.data(), dp_ref.data(), dm_ref.data(),
                                n);
    for (std::size_t i = 0; i < n; ++i) {
      const double base = (logz[i] + drift_t[i]) * inv_vs[i];
      ASSERT_EQ(dp_ref[i], base + half_vs[i]);
      ASSERT_EQ(dm_ref[i], base - half_vs[i]);
    }
    for (const Level lvl : available_levels()) {
      std::vector<double> dp(n), dm(n);
      simd::kernels(lvl).bs_dpm(logz.data(), drift_t.data(), inv_vs.data(),
                                half_vs.data(), dp.data(), dm.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        if (lvl == Level::avx512) {
          ASSERT_NEAR(dp[i], dp_ref[i], kPathTol)
              << simd::to_string(lvl) << " i=" << i;
          ASSERT_NEAR(dm[i], dm_ref[i], kPathTol)
              << simd::to_string(lvl) << " i=" << i;
        } else {
          ASSERT_EQ(dp[i], dp_ref[i]) << simd::to_string(lvl) << " i=" << i;
          ASSERT_EQ(dm[i], dm_ref[i]) << simd::to_string(lvl) << " i=" << i;
        }
      }
    }
  }
}

TEST_F(SimdTest, NormCdfMatchesErfcAndAgreesAcrossLevels) {
  // Accuracy: the libm-free Phi must sit within the A&S rational's 7.5e-8
  // bound of the erfc-based reference everywhere (including the far tails
  // and the exp clamp region). Cross-path: AVX2 carries the scalar bits
  // exactly (no FMA); AVX-512 contracts its Horner chains and may differ in
  // the last ulps, within kPathTol.
  std::vector<double> x;
  for (double v = -40.0; v <= 40.0; v += 0.37) x.push_back(v);
  for (const double v : {-1e-12, 0.0, 1e-12, -6.5, 6.5, -38.6, 38.6, 1e3})
    x.push_back(v);
  const std::size_t n = x.size();
  std::vector<double> ref(n);
  simd::tables::scalar.norm_cdf(x.data(), ref.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double want = 0.5 * std::erfc(-x[i] / std::numbers::sqrt2);
    ASSERT_NEAR(ref[i], want, 7.5e-8) << "x=" << x[i];
    ASSERT_GE(ref[i], 0.0);
    ASSERT_LE(ref[i], 1.0);
  }
  for (const Level lvl : available_levels()) {
    std::vector<double> got(n);
    simd::kernels(lvl).norm_cdf(x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (lvl == Level::avx512) {
        ASSERT_NEAR(got[i], ref[i], kPathTol)
            << simd::to_string(lvl) << " x=" << x[i];
      } else {
        ASSERT_EQ(got[i], ref[i]) << simd::to_string(lvl) << " x=" << x[i];
      }
    }
  }
}

TEST_F(SimdTest, InterleaveScaledMatchesScaleThenInterleave) {
  // The fused inverse-normalization pass must equal scale2 followed by
  // interleave bit for bit at every level (it performs the same multiply).
  const std::size_t n = 1029;
  for (const Level lvl : available_levels()) {
    const simd::Kernels& k = simd::kernels(lvl);
    for (const std::size_t off : {0u, 1u}) {
      aligned_vector<double> re(n + off), im(n + off);
      const auto rinit = random_real(n + off, 41);
      const auto iinit = random_real(n + off, 42);
      std::copy(rinit.begin(), rinit.end(), re.begin());
      std::copy(iinit.begin(), iinit.end(), im.begin());
      const double s = 1.0 / 1024.0;
      aligned_vector<double> re2 = re, im2 = im;
      aligned_vector<cplx> want(n + off), got(n + off);
      k.scale2(re2.data() + off, im2.data() + off, n, s);
      k.interleave(re2.data() + off, im2.data() + off, want.data() + off, n);
      k.interleave_scaled(re.data() + off, im.data() + off, got.data() + off,
                          n, s);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i + off], want[i + off])
            << simd::to_string(lvl) << " i=" << i;
    }
  }
}

TEST_F(SimdTest, KernelCacheSpectralPriceParityAcrossLevels) {
  // End-to-end: the solvers' spectral run_conv path (KernelCache-owned
  // spectra) prices identically across dispatch levels within tolerance.
  // paper_spec has Y > 0, so the call takes the nonlinear boundary descent
  // — the code path that exercises run_conv's spectrum consumption.
  simd::set_level(Level::scalar);
  const double want =
      pricing::bopm::american_call_fft(pricing::paper_spec(), 1024);
  for (const Level lvl : available_levels()) {
    if (lvl == Level::scalar) continue;
    simd::set_level(lvl);
    const double got =
        pricing::bopm::american_call_fft(pricing::paper_spec(), 1024);
    EXPECT_NEAR(got, want, 1e-10 * want) << simd::to_string(lvl);
  }
}

}  // namespace
