// Accuracy contract of the Engine::boundary (ALO) backend, DESIGN.md §6.
//
// The boundary engine is NOT bit-comparable to the stencil engines — it
// computes the continuous-time BSM American price directly, while the fft
// engine discretizes time and converges to it first order in 1/T. The
// contract tested here:
//
//  * fft-vs-boundary differences shrink as T grows (the lattice converges
//    TOWARD the boundary price, not away from it), and at T = 2^13 the
//    ATM difference is under 1e-4 on a K = 100 contract;
//  * the default preset (13 nodes / 25 quad / 8 sweeps) sits within 1e-5
//    of the converged high-node answer; the accurate preset (25/65/32)
//    within 1e-8;
//  * the solved Chebyshev boundary matches the Θ(T^2) stencil-grid
//    boundary within the grid's own resolution (a few cells of ds in log
//    space) across a strike/vol/expiry grid — satellite check tying the
//    two subsystems together;
//  * structural identities hold: put-call symmetry, the European limits
//    (r = 0 put, q = 0 call), and the deep-ITM payoff floor;
//  * a golden value pins the defaults across dispatch levels: scalar and
//    avx2 are bit-identical by the §4 no-FMA rule, avx512 may drift last
//    ulps, so the pin uses a 1e-9 window that any level must hit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/pricing/pricer.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

constexpr OptionSpec kAtm{100.0, 100.0, 0.05, 0.25, 0.0, 1.0};

[[nodiscard]] double alo_price(const OptionSpec& spec, Right right,
                               int nodes = 0, int quad = 0, int iters = 0) {
  core::SolverConfig cfg;
  if (nodes > 0) cfg.alo_nodes = nodes;
  if (quad > 0) cfg.alo_quad = quad;
  if (iters > 0) cfg.alo_iterations = iters;
  return alo::american_price(spec, right, cfg, nullptr);
}

TEST(AloConvergence, FftLatticeConvergesTowardBoundaryPrice) {
  const double ref = alo_price(kAtm, Right::put);
  // Measured |fft(T) - alo|: 1.61e-4 at 2^11, 8.3e-5 at 2^12, 4.2e-5 at
  // 2^13 — clean first-order decay straight at the boundary value. Assert
  // the documented envelope plus the halving trend with headroom.
  std::vector<double> err;
  for (std::int64_t T : {std::int64_t{1} << 11, std::int64_t{1} << 12,
                         std::int64_t{1} << 13})
    err.push_back(std::abs(
        price(kAtm, T, Model::bsm, Right::put, Style::american, Engine::fft) -
        ref));
  EXPECT_LT(err[2], 1e-4);
  EXPECT_LT(err[1], err[0]);
  EXPECT_LT(err[2], err[1]);
  EXPECT_GT(err[0] / err[2], 2.5);  // ~3.8 measured; first order gives 4
}

TEST(AloConvergence, AgreesWithFftAcrossMoneynessVolAndDividends) {
  // Documented cross-engine tolerance at T = 2^12: 3e-4 absolute on
  // K = 100 contracts (ATM measured 8.3e-5; the dividend put 3.2e-5).
  const std::int64_t T = std::int64_t{1} << 12;
  for (const double S : {80.0, 100.0, 120.0})
    for (const double V : {0.15, 0.35})
      for (const double Y : {0.0, 0.04}) {
        const OptionSpec spec{S, 100.0, 0.05, V, Y, 1.0};
        const double lattice = price(spec, T, Model::bsm, Right::put,
                                     Style::american, Engine::fft);
        EXPECT_NEAR(alo_price(spec, Right::put), lattice, 3e-4)
            << "S=" << S << " V=" << V << " Y=" << Y;
      }
}

TEST(AloConvergence, PresetsConvergeToTheHighNodeAnswer) {
  const double converged = alo_price(kAtm, Right::put, 41, 129, 64);
  // Measured: defaults -2.4e-6 from converged, accurate preset +6e-10.
  EXPECT_NEAR(alo_price(kAtm, Right::put), converged, 1e-5);
  EXPECT_NEAR(alo_price(kAtm, Right::put, 25, 65, 32), converged, 1e-8);
}

TEST(AloConvergence, GoldenValuePinsEveryDispatchLevel) {
  // Reference computed with the scalar kernel table. scalar and avx2 must
  // reproduce it bit-for-bit (§4: the avx2 TU cannot contract), avx512 may
  // sit last-ulps away — 1e-9 is orders of magnitude above either and far
  // below the engine's own accuracy step between presets.
  EXPECT_NEAR(alo_price(kAtm, Right::put), 7.974479976563, 1e-9);
}

TEST(AloBoundary, MatchesStencilGridBoundaryAcrossGrid) {
  // Satellite check: the Chebyshev boundary and the Θ(T^2) stencil-grid
  // boundary (bsm::exercise_boundary_vanilla) describe the same curve.
  // The grid boundary k_n is quantized to whole cells of ds in log-price
  // and carries the lattice's own O(1/T) bias, so the documented tolerance
  // is 3 grid cells in log space, skipping the first T/8 rows where the
  // discrete boundary is still resolving its sqrt(tau log tau) start.
  const std::int64_t T = 1 << 10;
  for (const double K : {90.0, 110.0})
    for (const double V : {0.2, 0.4})
      for (const double E : {0.5, 1.0}) {
        const OptionSpec spec{100.0, K, 0.06, V, 0.0, E};
        const BsmParams prm = derive_bsm(spec, T);
        const auto k = bsm::exercise_boundary_vanilla(spec, T);
        std::vector<double> taus, lat_log;
        for (std::int64_t n = T / 8; n <= T; n += T / 16) {
          taus.push_back(E * static_cast<double>(n) / static_cast<double>(T));
          lat_log.push_back(static_cast<double>(k[static_cast<std::size_t>(n)]) *
                            prm.ds);
        }
        core::SolverConfig cfg;
        const auto b = alo::put_boundary(spec, cfg, taus);
        ASSERT_EQ(b.size(), taus.size());
        for (std::size_t i = 0; i < taus.size(); ++i) {
          EXPECT_NEAR(std::log(b[i] / K), lat_log[i], 3.0 * prm.ds)
              << "K=" << K << " V=" << V << " E=" << E << " tau=" << taus[i];
          if (i > 0) EXPECT_LE(b[i], b[i - 1] + 1e-12);  // decreasing in tau
        }
      }
}

TEST(AloStructure, PutCallSymmetryIsExact) {
  // C(S, K, r, q) = P(K, S, q, r) is the call implementation itself, so
  // the identity must hold to the bit.
  const OptionSpec put_side{95.0, 105.0, 0.03, 0.3, 0.07, 1.5};
  const OptionSpec call_side{105.0, 95.0, 0.07, 0.3, 0.03, 1.5};
  EXPECT_EQ(alo_price(call_side, Right::call), alo_price(put_side, Right::put));
}

TEST(AloStructure, EuropeanLimitsAndPayoffFloor) {
  // r = 0: early exercise of a put is never optimal -> European value.
  OptionSpec spec = kAtm;
  spec.R = 0.0;
  spec.Y = 0.02;
  EXPECT_NEAR(alo_price(spec, Right::put), bs::european_put(spec), 1e-12);
  // q = 0: the American call on a non-dividend stock is European. The
  // engine reaches this through the symmetry put, so agreement is to the
  // engine's accuracy, not exact.
  spec = kAtm;
  EXPECT_NEAR(alo_price(spec, Right::call), bs::european_call(spec), 1e-6);
  // Deep ITM: below the boundary the quote is the payoff, exactly.
  spec = kAtm;
  spec.S = 20.0;
  EXPECT_EQ(alo_price(spec, Right::put), spec.K - spec.S);
  // American >= European always, strictly so for the ATM put with r > 0.
  EXPECT_GT(alo_price(kAtm, Right::put), bs::european_put(kAtm) + 1e-3);
}

TEST(AloStructure, RejectsNegativeRates) {
  core::SolverConfig cfg;
  OptionSpec spec = kAtm;
  spec.R = -0.01;
  EXPECT_THROW((void)alo::american_price(spec, Right::put, cfg, nullptr),
               std::invalid_argument);
  spec = kAtm;
  spec.Y = -0.01;
  EXPECT_THROW((void)alo::american_price(spec, Right::put, cfg, nullptr),
               std::invalid_argument);
}

TEST(AloSession, NodeTablesAreCachedPerAccuracySetting) {
  Pricer session;
  PricingRequest req;
  req.spec = kAtm;
  req.T = 1;
  req.model = Model::bsm;
  req.right = Right::put;
  req.style = Style::american;
  req.engine = Engine::boundary;
  ASSERT_EQ(session.price_one(req).status, Status::ok);
  req.spec.K = 110.0;  // same knobs -> same table
  ASSERT_EQ(session.price_one(req).status, Status::ok);
  EXPECT_EQ(session.stats().node_tables, 1u);
  core::SolverConfig accurate;
  accurate.alo_nodes = 25;
  accurate.alo_quad = 65;
  req.solver = accurate;  // new knobs -> second table
  ASSERT_EQ(session.price_one(req).status, Status::ok);
  EXPECT_EQ(session.stats().node_tables, 2u);
  session.clear();
  EXPECT_EQ(session.stats().node_tables, 0u);
}

TEST(AloSession, ImpliedVolRoutesThroughTheBoundaryEngine) {
  Pricer session;
  PricingRequest req;
  req.spec = kAtm;
  req.T = 1;
  req.model = Model::bsm;
  req.right = Right::put;
  req.style = Style::american;
  req.engine = Engine::boundary;
  const PricingResult quote = session.price_one(req);
  ASSERT_EQ(quote.status, Status::ok);

  req.compute = Compute::implied_vol;
  req.target_price = quote.price;
  const auto solved = session.implied_vol_many({&req, 1});
  ASSERT_EQ(solved[0].status, Status::ok);
  EXPECT_TRUE(solved[0].implied_vol.converged);
  EXPECT_NEAR(solved[0].implied_vol.vol, kAtm.V, 1e-8);

  // Identical repeat is served from the IV cache: zero Newton iterations.
  const auto warm = session.implied_vol_many({&req, 1});
  ASSERT_EQ(warm[0].status, Status::ok);
  EXPECT_EQ(warm[0].implied_vol.iterations, 0);
  EXPECT_EQ(warm[0].implied_vol.vol, solved[0].implied_vol.vol);

  // The call side solves through the same engine (no lattice fallback).
  req.right = Right::call;
  req.compute = Compute::price;
  const PricingResult call_quote = session.price_one(req);
  ASSERT_EQ(call_quote.status, Status::ok);
  req.compute = Compute::implied_vol;
  req.target_price = call_quote.price;
  const auto call_iv = session.implied_vol_many({&req, 1});
  ASSERT_EQ(call_iv[0].status, Status::ok);
  EXPECT_NEAR(call_iv[0].implied_vol.vol, kAtm.V, 1e-8);
}

}  // namespace
