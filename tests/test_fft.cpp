// Unit and property tests for the radix-2 FFT substrate (S1).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "amopt/fft/fft.hpp"

namespace {

using amopt::fft::cplx;

std::vector<cplx> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{dist(rng), dist(rng)};
  return v;
}

/// O(n^2) reference DFT.
std::vector<cplx> dft_reference(const std::vector<cplx>& in) {
  const std::size_t n = in.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double a = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                       static_cast<double>(n);
      acc += in[j] * cplx{std::cos(a), std::sin(a)};
    }
    out[k] = acc;
  }
  return out;
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  std::vector<cplx> v = random_signal(n, 42 + static_cast<unsigned>(n));
  const std::vector<cplx> orig = v;
  amopt::fft::forward(v);
  amopt::fft::inverse(v);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-11) << "i=" << i;
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-11) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024,
                                           4096, 1u << 16));

class FftVsDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDft, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  std::vector<cplx> v = random_signal(n, 7 + static_cast<unsigned>(n));
  const std::vector<cplx> ref = dft_reference(v);
  amopt::fft::forward(v);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(v[k].real(), ref[k].real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(v[k].imag(), ref[k].imag(), 1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, FftVsDft,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft, ImpulseTransformsToConstant) {
  std::vector<cplx> v(64, cplx{0.0, 0.0});
  v[0] = cplx{1.0, 0.0};
  amopt::fft::forward(v);
  for (const cplx& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToImpulse) {
  const std::size_t n = 128;
  std::vector<cplx> v(n, cplx{1.0, 0.0});
  amopt::fft::forward(v);
  EXPECT_NEAR(v[0].real(), static_cast<double>(n), 1e-9);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-9) << "k=" << k;
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 512;
  std::vector<cplx> v = random_signal(n, 99);
  double time_energy = 0.0;
  for (const cplx& x : v) time_energy += std::norm(x);
  amopt::fft::forward(v);
  double freq_energy = 0.0;
  for (const cplx& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9 * n);
}

TEST(Fft, LinearityOfTransform) {
  const std::size_t n = 256;
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  amopt::fft::forward(a);
  amopt::fft::forward(b);
  amopt::fft::forward(combo);
  for (std::size_t i = 0; i < n; ++i) {
    const cplx expect = 2.0 * a[i] - 3.0 * b[i];
    EXPECT_NEAR(std::abs(combo[i] - expect), 0.0, 1e-9);
  }
}

TEST(Fft, PlanCacheReturnsSameInstance) {
  const auto& p1 = amopt::fft::plan_for(1024);
  const auto& p2 = amopt::fft::plan_for(1024);
  EXPECT_EQ(&p1, &p2);
  EXPECT_EQ(p1.size(), 1024u);
}

TEST(Fft, TimeShiftBecomesPhaseRamp) {
  const std::size_t n = 64;
  std::vector<cplx> v(n, cplx{0.0, 0.0});
  v[1] = cplx{1.0, 0.0};  // delta at index 1
  amopt::fft::forward(v);
  for (std::size_t k = 0; k < n; ++k) {
    const double a =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    EXPECT_NEAR(v[k].real(), std::cos(a), 1e-11);
    EXPECT_NEAR(v[k].imag(), std::sin(a), 1e-11);
  }
}

}  // namespace
