// Determinism stress test for the execution plane: the task pool changes
// WHERE work runs, never what it computes. A heterogeneous 64-item batch
// (mixed models, rights, expiries, engines, targets) priced at width 8 —
// with the per-batch fan-out, the task-parallel descent, and the FFT stage
// splits all live — must reproduce the width-1 session bit for bit, on
// prices, greeks and implied vols alike, across 50 repeated rounds on one
// warm session (so steals hit warm arenas in every interleaving the
// scheduler can produce). Also pins the cross-thread scratch accounting
// the service plane's admission control keys on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/pricer.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

[[nodiscard]] std::vector<PricingRequest> heterogeneous_batch() {
  // 64 items: cycle models/rights/engines/targets while sweeping spot,
  // vol and expiry so no two items are the same unit of work.
  constexpr Model kModels[] = {Model::bopm, Model::topm, Model::bsm};
  constexpr Engine kEngines[] = {Engine::fft, Engine::vanilla,
                                 Engine::tiled};
  std::vector<PricingRequest> reqs;
  reqs.reserve(64);
  for (int i = 0; i < 64; ++i) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.S = 80.0 + static_cast<double>(i % 9) * 5.0;
    q.spec.V = 0.15 + static_cast<double>(i % 5) * 0.05;
    q.T = 256 << (i % 3);
    q.model = kModels[i % 3];
    q.right = i % 2 == 0 ? Right::call : Right::put;
    q.style = Style::american;
    q.engine = kEngines[(i / 2) % 3];
    if (!Pricer::supports(q.model, q.right, q.style, q.engine)) {
      // Keep all 64 items real work: BOPM/fft american prices both rights.
      q.model = Model::bopm;
      q.engine = Engine::fft;
    }
    q.compute = Compute::price;
    if (i % 4 == 1) {
      // Greeks (and implied vol below) are a bopm/american/fft capability;
      // pin those items there, keeping the sweep over spot/vol/T.
      q.model = Model::bopm;
      q.engine = Engine::fft;
      q.compute |= Compute::greeks;
    }
    if (i % 8 == 3) {
      q.model = Model::bopm;
      q.engine = Engine::fft;
      // Invert a slightly-ticked true quote so Newton genuinely iterates.
      q.compute |= Compute::implied_vol;
      q.target_price = bopm::american_put_fft_direct(q.spec, q.T) * 1.0003;
    }
    reqs.push_back(q);
  }
  return reqs;
}

[[nodiscard]] std::vector<PricingResult> price_at_width(
    Pricer& session, const std::vector<PricingRequest>& reqs, int width) {
  ThreadScope scope(width);
  return session.price_many(reqs);
}

TEST(Determinism, WidthEightMatchesWidthOneBitForBitOverFiftyRounds) {
  const std::vector<PricingRequest> reqs = heterogeneous_batch();

  Pricer serial_session;
  const std::vector<PricingResult> ref =
      price_at_width(serial_session, reqs, 1);
  ASSERT_EQ(ref.size(), reqs.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(ref[i].status, Status::ok) << "item " << i;

  Pricer parallel_session;
  for (int round = 0; round < 50; ++round) {
    const std::vector<PricingResult> got =
        price_at_width(parallel_session, reqs, 8);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i].status, ref[i].status)
          << "round " << round << " item " << i;
      // Bit-identical, not merely close: EQ on the exact doubles.
      ASSERT_EQ(got[i].price, ref[i].price)
          << "round " << round << " item " << i;
      if (reqs[i].compute & Compute::greeks) {
        ASSERT_EQ(got[i].greeks.delta, ref[i].greeks.delta)
            << "round " << round << " item " << i;
        ASSERT_EQ(got[i].greeks.gamma, ref[i].greeks.gamma)
            << "round " << round << " item " << i;
        ASSERT_EQ(got[i].greeks.theta, ref[i].greeks.theta)
            << "round " << round << " item " << i;
      }
      if (reqs[i].compute & Compute::implied_vol) {
        // Iteration counts legitimately drop to zero on warm rounds (the
        // session's memo replays the inversion); the NUMBER must not move.
        ASSERT_EQ(got[i].implied_vol.vol, ref[i].implied_vol.vol)
            << "round " << round << " item " << i;
        ASSERT_EQ(got[i].implied_vol.converged, ref[i].implied_vol.converged)
            << "round " << round << " item " << i;
      }
    }
  }
}

TEST(Determinism, StatsAggregateScratchAcrossPoolThreads) {
  // After a parallel batch, the session must report both its per-executor
  // high-water mark and the process-wide arena total the server's
  // admission control compares against ceilings; the total covers every
  // pool worker's arena, so it dominates the single-thread figure.
  const std::vector<PricingRequest> reqs = heterogeneous_batch();
  Pricer session;
  {
    ThreadScope scope(4);
    (void)session.price_many(reqs);
  }
  const Pricer::Stats st = session.stats();
  EXPECT_GT(st.scratch_high_water_bytes, 0u);
  EXPECT_GT(st.scratch_total_bytes, 0u);
  EXPECT_GE(st.scratch_total_bytes, st.scratch_high_water_bytes);
}

}  // namespace
