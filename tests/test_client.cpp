// The retrying client's contract (DESIGN.md §11): every price_many call
// ends with exactly one terminal status per item, no matter what the
// transport does. Backoff is deterministic off the jitter seed; overloaded
// is the only retried status; any transport failure drops the connection
// and resubmits the still-pending items as a whole v2 frame with a bumped
// attempt header; deadlines turn a silent peer into `deadline_exceeded`
// instead of a hang. Scripted in-test servers pin the frame-level protocol
// (what the client actually sends per attempt); real `Server::serve`
// threads behind a FaultInjectingTransport pin end-to-end recovery.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "amopt/pricing/pricer.hpp"
#include "amopt/service/client.hpp"
#include "amopt/service/fault.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

[[nodiscard]] std::vector<PricingRequest> put_chain(std::size_t n) {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.right = Right::put;
  q.T = 256;
  for (std::size_t i = 0; i < n; ++i) {
    q.spec.K = 110.0 + 5.0 * static_cast<double>(i);
    reqs.push_back(q);
  }
  return reqs;
}

// Blocking-read one whole request frame off `t` (scripted-server side).
// Returns false on EOF before a full frame.
[[nodiscard]] bool read_request_frame(Transport& t,
                                      std::vector<PricingRequest>& reqs,
                                      std::vector<std::uint64_t>& deadlines,
                                      wire::FrameHeader& hdr) {
  std::vector<std::byte> buf(std::size_t{1} << 16);
  std::size_t have = 0;
  for (;;) {
    std::size_t consumed = 0;
    const wire::DecodeError e = wire::decode_request_batch(
        {buf.data(), have}, reqs, deadlines, hdr, consumed);
    if (e == wire::DecodeError::ok) return true;
    if (e != wire::DecodeError::need_more) return false;
    const std::size_t n = t.read_some({buf.data() + have, buf.size() - have});
    if (n == 0) return false;
    have += n;
  }
}

TEST(ClientBackoff, IsDeterministicDoublingCappedAndJittered) {
  // Same seed, same sequence — reproducible soaks. Each value lands in
  // [50%, 100%] of min(max, initial * 2^(attempt-1)).
  std::uint64_t s1 = 42, s2 = 42;
  for (unsigned attempt = 1; attempt <= 12; ++attempt) {
    const std::uint64_t a = service::detail::backoff_us(500, 100000, attempt, s1);
    const std::uint64_t b = service::detail::backoff_us(500, 100000, attempt, s2);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    std::uint64_t base = 500;
    for (unsigned i = 1; i < attempt && base < 100000; ++i) base *= 2;
    base = std::min<std::uint64_t>(base, 100000);
    EXPECT_GE(a, base / 2) << "attempt " << attempt;
    EXPECT_LE(a, base) << "attempt " << attempt;
  }
  // Different seeds decorrelate (the whole point of jitter): at least one
  // of the first few draws must differ.
  std::uint64_t s3 = 1, s4 = 2;
  bool differs = false;
  for (unsigned attempt = 1; attempt <= 8; ++attempt)
    differs |= service::detail::backoff_us(500, 100000, attempt, s3) !=
               service::detail::backoff_us(500, 100000, attempt, s4);
  EXPECT_TRUE(differs);
  // Degenerate knobs are quiet zeros, not UB.
  std::uint64_t s5 = 7;
  EXPECT_EQ(service::detail::backoff_us(0, 100000, 3, s5), 0u);
  EXPECT_EQ(service::detail::backoff_us(500, 100000, 0, s5), 0u);
}

TEST(Client, HappyPathPricesInOneAttemptAndReusesTheConnection) {
  Server server;
  auto [client_end, daemon_end] = loopback_pair();
  std::thread conn([&server, t = daemon_end.get()] { server.serve(*t); });

  ClientConfig cfg;
  auto endpoint =
      std::make_shared<std::unique_ptr<Transport>>(std::move(client_end));
  cfg.connect = [endpoint] { return std::move(*endpoint); };
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(4);
  std::vector<PricingResult> out;
  EXPECT_TRUE(client.price_many(reqs, out));
  ASSERT_EQ(out.size(), reqs.size());
  for (const PricingResult& r : out) EXPECT_EQ(r.status, Status::ok);
  EXPECT_EQ(client.last_call().attempts, 1u);
  EXPECT_EQ(client.last_call().reconnects, 0u);
  EXPECT_EQ(client.last_call().retried_items, 0u);

  // Second call rides the same connection; prices are bit-identical to a
  // direct session (the daemon is just a session behind a wire).
  std::vector<PricingResult> again;
  EXPECT_TRUE(client.price_many(reqs, again));
  EXPECT_EQ(client.last_call().attempts, 1u);
  EXPECT_EQ(client.last_call().reconnects, 0u);
  Pricer direct;
  const std::vector<PricingResult> want = direct.price_many(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(again[i].price, want[i].price);
    EXPECT_EQ(again[i].price, out[i].price);
  }
  EXPECT_EQ(server.stats().retries_observed, 0u);

  client.disconnect();
  conn.join();
}

TEST(Client, OnlyOverloadedItemsAreResentAndTheRetryFrameSaysSo) {
  // Scripted server: first frame answers {ok, overloaded, error}; the
  // retry frame must carry ONLY the overloaded item, with attempt == 1,
  // and gets an ok. Pins frame-level retry semantics exactly.
  auto [client_end, daemon_end] = loopback_pair();
  wire::FrameHeader hdr1{}, hdr2{};
  std::vector<PricingRequest> got1, got2;
  std::thread scripted([&, t = daemon_end.get()] {
    std::vector<std::uint64_t> dls;
    ASSERT_TRUE(read_request_frame(*t, got1, dls, hdr1));
    std::vector<PricingResult> res(got1.size());
    res[0].status = Status::ok;
    res[0].price = 17.25;
    res[1].status = Status::overloaded;
    res[1].message = "shard busy; retry after a backoff";
    res[2].status = Status::error;
    res[2].message = "scripted per-item failure";
    std::vector<std::byte> reply;
    wire::encode_result_batch(res, reply);
    ASSERT_TRUE(t->write_all(reply));

    ASSERT_TRUE(read_request_frame(*t, got2, dls, hdr2));
    std::vector<PricingResult> res2(got2.size());
    for (PricingResult& r : res2) {
      r.status = Status::ok;
      r.price = 9.5;
    }
    reply.clear();
    wire::encode_result_batch(res2, reply);
    ASSERT_TRUE(t->write_all(reply));
  });

  ClientConfig cfg;
  auto endpoint =
      std::make_shared<std::unique_ptr<Transport>>(std::move(client_end));
  cfg.connect = [endpoint] { return std::move(*endpoint); };
  cfg.backoff_initial = std::chrono::microseconds(100);
  cfg.jitter_seed = 3;
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(3);
  std::vector<PricingResult> out;
  EXPECT_FALSE(client.price_many(reqs, out));  // the error item is terminal
  scripted.join();

  ASSERT_EQ(got1.size(), 3u);
  EXPECT_EQ(hdr1.version, wire::kVersion);
  EXPECT_EQ(hdr1.attempt, 0u);
  ASSERT_EQ(got2.size(), 1u) << "retry frames carry only pending items";
  EXPECT_EQ(hdr2.attempt, 1u);
  EXPECT_EQ(got2[0].spec.K, reqs[1].spec.K) << "the overloaded item, alone";

  EXPECT_EQ(out[0].status, Status::ok);
  EXPECT_EQ(out[0].price, 17.25);
  EXPECT_EQ(out[1].status, Status::ok) << "retried to completion";
  EXPECT_EQ(out[1].price, 9.5);
  EXPECT_EQ(out[2].status, Status::error) << "errors are never retried";
  EXPECT_EQ(out[2].message, "scripted per-item failure");

  const CallStats& cs = client.last_call();
  EXPECT_EQ(cs.attempts, 2u);
  EXPECT_EQ(cs.retried_items, 1u);
  EXPECT_EQ(cs.reconnects, 0u);
  EXPECT_GT(cs.backoff_total_us, 0u) << "retries wait out a backoff";
  client.disconnect();
}

TEST(Client, ExhaustedRetriesKeepTheServersOverloadedVerdict) {
  // A server that never stops saying overloaded: after max_attempts the
  // item's terminal status is the server's own verdict and hint message,
  // not a synthesized transport error.
  auto [client_end, daemon_end] = loopback_pair();
  std::thread scripted([t = daemon_end.get()] {
    for (int frame = 0; frame < 2; ++frame) {
      std::vector<PricingRequest> reqs;
      std::vector<std::uint64_t> dls;
      wire::FrameHeader hdr{};
      if (!read_request_frame(*t, reqs, dls, hdr)) return;
      std::vector<PricingResult> res(reqs.size());
      for (PricingResult& r : res) {
        r.status = Status::overloaded;
        r.message = "saturated; retry after a backoff";
      }
      std::vector<std::byte> reply;
      wire::encode_result_batch(res, reply);
      if (!t->write_all(reply)) return;
    }
  });

  ClientConfig cfg;
  auto endpoint =
      std::make_shared<std::unique_ptr<Transport>>(std::move(client_end));
  cfg.connect = [endpoint] { return std::move(*endpoint); };
  cfg.max_attempts = 2;
  cfg.backoff_initial = std::chrono::microseconds(100);
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(2);
  std::vector<PricingResult> out;
  EXPECT_FALSE(client.price_many(reqs, out));
  for (const PricingResult& r : out) {
    EXPECT_EQ(r.status, Status::overloaded);
    EXPECT_NE(r.message.find("retry"), std::string::npos);
  }
  EXPECT_EQ(client.last_call().attempts, 2u);
  client.disconnect();
  scripted.join();
}

TEST(Client, DeadlineOnASilentServerIsTerminalNotAHang) {
  // The peer accepts frames and never answers. Every item must end
  // deadline_exceeded within the budget (plus scheduling slack) — the
  // no-hang guarantee the whole client exists for.
  std::vector<std::unique_ptr<Transport>> parked;  // keep peers alive
  ClientConfig cfg;
  cfg.connect = [&parked] {
    auto [a, b] = loopback_pair();
    parked.push_back(std::move(b));
    return std::move(a);
  };
  cfg.max_attempts = 100;  // the deadline, not the attempt cap, must bind
  cfg.backoff_initial = std::chrono::microseconds(200);
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(2);
  std::vector<PricingResult> out;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      client.price_many(reqs, out, std::chrono::milliseconds(50)));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "must not block unbounded";
  for (const PricingResult& r : out) {
    EXPECT_EQ(r.status, Status::deadline_exceeded);
    EXPECT_NE(r.message.find("deadline"), std::string::npos);
    EXPECT_TRUE(std::isnan(r.price));
  }
  EXPECT_GE(client.last_call().attempts, 1u);
  client.disconnect();
}

TEST(Client, ConnectFailureIsATerminalTransportError) {
  ClientConfig cfg;
  cfg.connect = [] { return std::unique_ptr<Transport>(); };
  cfg.max_attempts = 3;
  cfg.backoff_initial = std::chrono::microseconds(50);
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(2);
  std::vector<PricingResult> out;
  EXPECT_FALSE(client.price_many(reqs, out));
  for (const PricingResult& r : out) {
    EXPECT_EQ(r.status, Status::error);
    EXPECT_NE(r.message.find("transport"), std::string::npos);
  }
  EXPECT_EQ(client.last_call().attempts, 0u) << "no frame ever went out";
  EXPECT_EQ(client.last_call().reconnects, 3u);
}

// Dials a real Server over fresh loopback pairs, one serve thread per
// dial, with the FIRST dial's client end wrapped in a fault injector.
struct FaultyDialer {
  explicit FaultyDialer(FaultConfig first_dial_faults)
      : faults(first_dial_faults) {}
  ~FaultyDialer() {
    server.stop();
    for (std::thread& th : threads) th.join();
  }
  [[nodiscard]] std::unique_ptr<Transport> dial() {
    auto [a, b] = loopback_pair();
    threads.emplace_back([this, t = b.get()] { server.serve(*t); });
    parked.push_back(std::move(b));
    if (dials++ == 0)
      return std::make_unique<FaultInjectingTransport>(std::move(a), faults);
    return a;
  }
  Server server;
  FaultConfig faults;
  int dials = 0;
  std::vector<std::unique_ptr<Transport>> parked;
  std::vector<std::thread> threads;
};

TEST(Client, TruncatedWriteForcesReconnectAndWholeFrameResubmission) {
  // Dial 1's first write is truncated mid-frame and hard-closed (a peer
  // dying mid-send). The client must reconnect and resubmit the whole
  // frame on a fresh transport; the server sees attempt > 0.
  FaultConfig faults;
  faults.truncate_write = 1.0;
  faults.seed = 11;
  FaultyDialer dialer(faults);

  ClientConfig cfg;
  cfg.connect = [&dialer] { return dialer.dial(); };
  cfg.backoff_initial = std::chrono::microseconds(100);
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(3);
  std::vector<PricingResult> out;
  EXPECT_TRUE(client.price_many(reqs, out));
  for (const PricingResult& r : out) EXPECT_EQ(r.status, Status::ok);
  EXPECT_EQ(client.last_call().reconnects, 1u);
  EXPECT_EQ(client.last_call().attempts, 2u);
  EXPECT_EQ(client.last_call().retried_items, reqs.size());
  EXPECT_GE(dialer.server.stats().retries_observed, 1u)
      << "the resubmitted frame carries its attempt count to the server";
  client.disconnect();
}

TEST(Client, LostReplyIsResubmittedAndPricedAgainIdempotently) {
  // drop_close on the first dial's READ path: the request reaches the
  // server and is priced, but the reply is lost when the injector
  // hard-closes. Resubmission prices the frame again — idempotent, so the
  // final answer matches a direct session bit for bit.
  FaultConfig faults;
  faults.drop_close = 1.0;
  faults.seed = 5;
  FaultyDialer dialer(faults);

  ClientConfig cfg;
  cfg.connect = [&dialer] { return dialer.dial(); };
  cfg.backoff_initial = std::chrono::microseconds(100);
  Client client(std::move(cfg));

  const std::vector<PricingRequest> reqs = put_chain(2);
  std::vector<PricingResult> out;
  EXPECT_TRUE(client.price_many(reqs, out));
  EXPECT_EQ(client.last_call().reconnects, 1u);

  Pricer direct;
  const std::vector<PricingResult> want = direct.price_many(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(out[i].price, want[i].price);
  client.disconnect();
}

}  // namespace
