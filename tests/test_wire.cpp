// Wire-format properties (service/wire.hpp): exact round trip — bit-
// identical doubles, including NaN payloads, infinities and signed zeros —
// across every supports() combination; strict rejection of truncated and
// corrupted frames as DecodeError values (never UB — this binary also runs
// under the CI ASan/UBSan leg); stream framing that consumes exactly one
// frame at a time.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "amopt/service/wire.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

constexpr Model kModels[] = {Model::bopm, Model::topm, Model::bsm};
constexpr Right kRights[] = {Right::call, Right::put};
constexpr Style kStyles[] = {Style::american, Style::european};
constexpr Engine kEngines[] = {Engine::fft,   Engine::vanilla,
                               Engine::vanilla_parallel, Engine::tiled,
                               Engine::cache_oblivious,  Engine::quantlib};

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

/// Field-by-field bitwise equality — EXPECT_EQ on doubles would call NaN
/// != NaN a mismatch and -0.0 == +0.0 a match, both wrong for a wire test.
void expect_bitwise_equal(const PricingRequest& a, const PricingRequest& b) {
  EXPECT_EQ(bits(a.spec.S), bits(b.spec.S));
  EXPECT_EQ(bits(a.spec.K), bits(b.spec.K));
  EXPECT_EQ(bits(a.spec.R), bits(b.spec.R));
  EXPECT_EQ(bits(a.spec.V), bits(b.spec.V));
  EXPECT_EQ(bits(a.spec.Y), bits(b.spec.Y));
  EXPECT_EQ(bits(a.spec.expiry_years), bits(b.spec.expiry_years));
  EXPECT_EQ(a.T, b.T);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.right, b.right);
  EXPECT_EQ(a.style, b.style);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.compute, b.compute);
  EXPECT_EQ(bits(a.target_price), bits(b.target_price));
  EXPECT_EQ(bits(a.iv.tol), bits(b.iv.tol));
  EXPECT_EQ(bits(a.iv.vol_lo), bits(b.iv.vol_lo));
  EXPECT_EQ(bits(a.iv.vol_hi), bits(b.iv.vol_hi));
  EXPECT_EQ(a.iv.max_iterations, b.iv.max_iterations);
  EXPECT_EQ(a.iv.T, b.iv.T);
  ASSERT_EQ(a.solver.has_value(), b.solver.has_value());
  if (a.solver.has_value()) {
    EXPECT_EQ(a.solver->base_case, b.solver->base_case);
    EXPECT_EQ(a.solver->task_cutoff, b.solver->task_cutoff);
    EXPECT_EQ(a.solver->parallel, b.solver->parallel);
    EXPECT_EQ(a.solver->drift, b.solver->drift);
    EXPECT_EQ(a.solver->memory, b.solver->memory);
    EXPECT_EQ(a.solver->conv_policy.path, b.solver->conv_policy.path);
    EXPECT_EQ(a.solver->alo_nodes, b.solver->alo_nodes);
    EXPECT_EQ(a.solver->alo_quad, b.solver->alo_quad);
    EXPECT_EQ(a.solver->alo_iterations, b.solver->alo_iterations);
  }
}

void expect_bitwise_equal(const PricingResult& a, const PricingResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.message, b.message);
  EXPECT_EQ(bits(a.price), bits(b.price));
  EXPECT_EQ(bits(a.greeks.price), bits(b.greeks.price));
  EXPECT_EQ(bits(a.greeks.delta), bits(b.greeks.delta));
  EXPECT_EQ(bits(a.greeks.gamma), bits(b.greeks.gamma));
  EXPECT_EQ(bits(a.greeks.theta), bits(b.greeks.theta));
  EXPECT_EQ(bits(a.greeks.vega), bits(b.greeks.vega));
  EXPECT_EQ(bits(a.greeks.rho), bits(b.greeks.rho));
  EXPECT_EQ(bits(a.implied_vol.vol), bits(b.implied_vol.vol));
  EXPECT_EQ(a.implied_vol.converged, b.implied_vol.converged);
  EXPECT_EQ(a.implied_vol.iterations, b.implied_vol.iterations);
}

[[nodiscard]] std::vector<PricingRequest> exhaustive_requests() {
  std::vector<PricingRequest> reqs;
  int i = 0;
  for (Model m : kModels)
    for (Right r : kRights)
      for (Style s : kStyles)
        for (Engine e : kEngines) {
          PricingRequest q;
          q.model = m;
          q.right = r;
          q.style = s;
          q.engine = e;
          // Vary every field, with awkward values mixed in: NaN with a
          // payload, infinities, signed zero, denormals.
          q.spec.S = 100.0 + i;
          q.spec.K = i % 5 == 0 ? -0.0 : 130.0 - i;
          q.spec.R = i % 7 == 0
                         ? std::bit_cast<double>(0x7ff8dead'beef0001ull)
                         : 0.001 * i;
          q.spec.V = i % 6 == 0 ? std::numeric_limits<double>::infinity()
                                : 0.15 + 0.01 * i;
          q.spec.Y = i % 6 == 3 ? -std::numeric_limits<double>::infinity()
                                : 0.0163;
          q.spec.expiry_years =
              i % 8 == 0 ? std::numeric_limits<double>::denorm_min()
                         : 0.25 + 0.125 * (i % 9);
          q.T = 64 + 17 * i;
          q.compute = 1u + static_cast<unsigned>(i) % 7u;
          q.target_price = 3.5 + 0.25 * i;
          q.iv.tol = 1e-8 * (1 + i % 3);
          q.iv.vol_lo = 1e-4;
          q.iv.vol_hi = 4.0 + i % 2;
          q.iv.max_iterations = 32 + i;
          q.iv.T = 1024 + i;
          if (i % 2 == 0) {
            core::SolverConfig c;
            c.base_case = 4 + i % 8;
            c.task_cutoff = 256 + i;
            c.parallel = i % 4 == 0;
            c.drift = i % 4 < 2 ? core::BoundaryDrift::shrinking
                                : core::BoundaryDrift::growing;
            c.memory = i % 3 == 0 ? core::MemoryPlane::heap
                                  : core::MemoryPlane::arena;
            c.conv_policy.path = static_cast<conv::Policy::Path>(i % 4);
            c.alo_nodes = 13 + i % 12;
            c.alo_quad = 25 + i % 40;
            c.alo_iterations = 8 + i % 24;
            q.solver = c;
          }
          reqs.push_back(q);
          ++i;
        }
  return reqs;
}

TEST(Wire, RequestBatchRoundTripsBitIdenticalOverAllCombinations) {
  std::vector<PricingRequest> reqs = exhaustive_requests();
  ASSERT_EQ(reqs.size(), 72u);  // the full supports() matrix
  // ... plus the boundary engine, which sits outside the lattice matrix.
  PricingRequest alo;
  alo.model = Model::bsm;
  alo.engine = Engine::boundary;
  alo.solver = core::SolverConfig{};
  alo.solver->alo_nodes = 25;
  alo.solver->alo_quad = 65;
  reqs.push_back(alo);

  std::vector<std::byte> buf;
  wire::encode_request_batch(reqs, buf);
  EXPECT_EQ(buf.size(),
            wire::kHeaderBytes + reqs.size() * wire::kRequestRecordBytes);

  std::vector<PricingRequest> back;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_batch(buf, back, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(consumed, buf.size());
  ASSERT_EQ(back.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_bitwise_equal(reqs[i], back[i]);
}

TEST(Wire, ResultBatchRoundTripsBitIdentical) {
  std::vector<PricingResult> results(5);
  results[0].status = Status::ok;
  results[0].price = 6.0930616081388835;
  results[0].greeks = {6.09, -0.55, 0.02, -1.9,
                       std::bit_cast<double>(0x7ff0dead'00000001ull), 0.4};
  results[1].status = Status::unsupported;
  results[1].message = "greeks: bsm_fdm engine has no greeks path";
  results[1].price = std::numeric_limits<double>::quiet_NaN();
  results[2].status = Status::failed_to_converge;
  results[2].implied_vol.vol = 0.19999999999;
  results[2].implied_vol.converged = false;
  results[2].implied_vol.iterations = 64;
  results[3].status = Status::error;
  results[3].message = std::string(3000, 'x');  // long diagnostic survives
  results[4].status = Status::overloaded;
  results[4].message = "overloaded: shard queue full; retry after a backoff";
  results[4].price = -0.0;

  std::vector<std::byte> buf;
  wire::encode_result_batch(results, buf);
  std::vector<PricingResult> back;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_result_batch(buf, back, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(consumed, buf.size());
  ASSERT_EQ(back.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i)
    expect_bitwise_equal(results[i], back[i]);
  // The exception_ptr never crosses the wire.
  EXPECT_EQ(back[3].error, nullptr);
}

TEST(Wire, EmptyBatchesAreValidFrames) {
  std::vector<std::byte> buf;
  wire::encode_request_batch({}, buf);
  EXPECT_EQ(buf.size(), wire::kHeaderBytes);
  std::vector<PricingRequest> back{PricingRequest{}};
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_batch(buf, back, consumed),
            wire::DecodeError::ok);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(consumed, wire::kHeaderBytes);
}

TEST(Wire, UnknownComputeBitsPassThroughForForwardCompat) {
  // Frame-level validation deliberately leaves `compute` alone: unknown
  // bits must become a per-item Status downstream, not poison the frame.
  PricingRequest q;
  q.compute = 0xee;
  std::vector<std::byte> buf;
  wire::encode_request_batch({&q, 1}, buf);
  std::vector<PricingRequest> back;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_batch(buf, back, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(back.at(0).compute, 0xeeu);
}

TEST(Wire, EveryTruncationIsNeedMoreNeverACrash) {
  const std::vector<PricingRequest> reqs(3);
  std::vector<std::byte> buf;
  wire::encode_request_batch(reqs, buf);
  std::vector<PricingRequest> out;
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t consumed = ~std::size_t{0};
    EXPECT_EQ(wire::decode_request_batch({buf.data(), len}, out, consumed),
              wire::DecodeError::need_more)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Wire, HeaderCorruptionIsDiagnosedPrecisely) {
  PricingRequest q;
  std::vector<std::byte> good;
  wire::encode_request_batch({&q, 1}, good);
  std::vector<PricingRequest> out;
  std::size_t consumed = 0;

  auto mutate = [&](std::size_t off, std::uint8_t value) {
    std::vector<std::byte> bad = good;
    bad[off] = static_cast<std::byte>(value);
    return wire::decode_request_batch(bad, out, consumed);
  };
  EXPECT_EQ(mutate(0, 0x00), wire::DecodeError::bad_magic);
  EXPECT_EQ(mutate(4, 0x7f), wire::DecodeError::bad_version);
  EXPECT_EQ(mutate(5, 0x09), wire::DecodeError::bad_kind);
  EXPECT_EQ(mutate(6, 0x01), wire::DecodeError::bad_reserved);
  // Count/payload mismatch: count says 2, payload holds 1 record.
  EXPECT_EQ(mutate(8, 0x02), wire::DecodeError::bad_length);
  // A result frame fed to the request decoder is a kind error.
  {
    std::vector<PricingResult> results(1);
    std::vector<std::byte> res;
    wire::encode_result_batch(results, res);
    EXPECT_EQ(wire::decode_request_batch(res, out, consumed),
              wire::DecodeError::bad_kind);
  }
  // An absurd declared payload is rejected before any allocation sizing.
  {
    std::vector<std::byte> bad = good;
    const std::uint32_t huge = 0xffffff00u;
    std::memcpy(bad.data() + 12, &huge, sizeof(huge));
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::oversized);
  }
}

TEST(Wire, RecordCorruptionIsRejected) {
  PricingRequest q;
  q.solver.reset();
  std::vector<std::byte> good;
  wire::encode_request_batch({&q, 1}, good);
  std::vector<PricingRequest> out;
  std::size_t consumed = 0;

  {  // out-of-range engine byte
    std::vector<std::byte> bad = good;
    bad[wire::kHeaderBytes + 59] = static_cast<std::byte>(200);
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::bad_enum);
  }
  {  // nonzero solver block while has_solver == 0
    std::vector<std::byte> bad = good;
    bad[wire::kHeaderBytes + 130] = static_cast<std::byte>(1);
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::bad_reserved);
  }
  {  // message length pointing past the payload
    std::vector<PricingResult> results(1);
    results[0].message = "abc";
    std::vector<std::byte> res;
    wire::encode_result_batch(results, res);
    std::vector<PricingResult> rout;
    res[wire::kHeaderBytes + 4] = static_cast<std::byte>(200);
    EXPECT_EQ(wire::decode_result_batch(res, rout, consumed),
              wire::DecodeError::bad_length);
  }
  {  // declared payload longer than its records: trailing slack is an error
    std::vector<PricingResult> results(1);
    std::vector<std::byte> res;
    wire::encode_result_batch(results, res);
    res.push_back(std::byte{0});
    const std::uint32_t payload =
        static_cast<std::uint32_t>(res.size() - wire::kHeaderBytes);
    std::memcpy(res.data() + 12, &payload, sizeof(payload));
    std::vector<PricingResult> rout;
    EXPECT_EQ(wire::decode_result_batch(res, rout, consumed),
              wire::DecodeError::bad_length);
  }
}

TEST(Wire, SingleByteFuzzNeverCrashesTheDecoders) {
  // Flip every byte of a valid two-record frame through a handful of
  // values: the decoder must always return cleanly (ok when the flipped
  // byte lands in a don't-care position like a double payload, an error
  // value otherwise) — never crash, scribble, or read out of bounds. The
  // sanitizer CI leg turns any violation into a failure here.
  std::vector<PricingRequest> reqs(2);
  reqs[1].solver = core::SolverConfig{};
  std::vector<std::byte> good;
  wire::encode_request_batch(reqs, good);
  std::vector<PricingRequest> out;
  constexpr std::uint8_t kProbes[] = {0x00, 0x01, 0x7f, 0x80, 0xff};
  for (std::size_t off = 0; off < good.size(); ++off) {
    for (std::uint8_t probe : kProbes) {
      std::vector<std::byte> bad = good;
      bad[off] = static_cast<std::byte>(probe);
      std::size_t consumed = 0;
      const wire::DecodeError e =
          wire::decode_request_batch(bad, out, consumed);
      if (e == wire::DecodeError::ok) {
        EXPECT_EQ(consumed, bad.size());
      }
      if (e == wire::DecodeError::need_more) {
        EXPECT_GT(off, 11u);  // only the length field can demand more bytes
      }
    }
  }
}

TEST(Wire, StreamDecodingConsumesExactlyOneFrame) {
  // Two frames back to back plus a trailing partial header: the decoder
  // peels the first frame exactly and reports need_more on the tail.
  std::vector<PricingRequest> first(2), second(1);
  first[0].T = 111;
  second[0].T = 222;
  std::vector<std::byte> stream;
  wire::encode_request_batch(first, stream);
  const std::size_t first_bytes = stream.size();
  wire::encode_request_batch(second, stream);
  const std::size_t second_bytes = stream.size() - first_bytes;
  stream.push_back(std::byte{'A'});  // start of a third frame's magic

  std::vector<PricingRequest> out;
  std::size_t consumed = 0;
  std::span<const std::byte> cursor{stream};
  ASSERT_EQ(wire::decode_request_batch(cursor, out, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(consumed, first_bytes);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].T, 111);
  cursor = cursor.subspan(consumed);
  ASSERT_EQ(wire::decode_request_batch(cursor, out, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(consumed, second_bytes);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].T, 222);
  cursor = cursor.subspan(consumed);
  EXPECT_EQ(wire::decode_request_batch(cursor, out, consumed),
            wire::DecodeError::need_more);
}

// ------------------------------------------------------------- wire v2
// The deadline extension (DESIGN.md §11): v2 request records carry a
// trailing u64 remaining-budget field, the header's byte 6 becomes the
// client's attempt counter, and result frames may carry
// `deadline_exceeded` — while every v1 frame keeps decoding bit-exactly.

TEST(WireV2, RequestBatchRoundTripsDeadlinesAndAttempt) {
  std::vector<PricingRequest> reqs = exhaustive_requests();
  std::vector<std::uint64_t> deadlines(reqs.size());
  for (std::size_t i = 0; i < deadlines.size(); ++i)
    deadlines[i] = i % 3 == 0 ? 0 : 1000 + 77 * i;  // 0 = no deadline

  std::vector<std::byte> buf;
  wire::encode_request_batch_v2(reqs, deadlines, /*attempt=*/3, buf);
  EXPECT_EQ(buf.size(),
            wire::kHeaderBytes + reqs.size() * wire::kRequestRecordBytesV2);

  std::vector<PricingRequest> back;
  std::vector<std::uint64_t> back_deadlines;
  wire::FrameHeader hdr;
  std::size_t consumed = 0;
  ASSERT_EQ(
      wire::decode_request_batch(buf, back, back_deadlines, hdr, consumed),
      wire::DecodeError::ok);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(hdr.version, 2);
  EXPECT_EQ(hdr.attempt, 3);
  ASSERT_EQ(back.size(), reqs.size());
  ASSERT_EQ(back_deadlines.size(), deadlines.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    expect_bitwise_equal(reqs[i], back[i]);
    EXPECT_EQ(back_deadlines[i], deadlines[i]);
  }
}

TEST(WireV2, CrossVersionDecoding) {
  // v1 frame through the deadline-aware decoder: zero deadlines, attempt 0.
  std::vector<PricingRequest> reqs(2);
  reqs[0].T = 333;
  std::vector<std::byte> v1;
  wire::encode_request_batch(reqs, v1);
  std::vector<PricingRequest> out;
  std::vector<std::uint64_t> dl{99u, 99u};  // stale values must be overwritten
  wire::FrameHeader hdr;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_batch(v1, out, dl, hdr, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(hdr.version, 1);
  EXPECT_EQ(hdr.attempt, 0);
  EXPECT_EQ(dl, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(out.at(0).T, 333);

  // v2 frame through the legacy deadline-free decoder: deadlines dropped,
  // requests intact.
  std::vector<std::byte> v2;
  const std::uint64_t budgets[] = {500, 0};
  wire::encode_request_batch_v2(reqs, budgets, /*attempt=*/1, v2);
  ASSERT_EQ(wire::decode_request_batch(v2, out, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(consumed, v2.size());
  ASSERT_EQ(out.size(), 2u);
  expect_bitwise_equal(reqs[0], out[0]);
}

TEST(WireV2, EveryTruncationIsNeedMoreAtEveryNewOffset) {
  std::vector<PricingRequest> reqs(3);
  const std::uint64_t budgets[] = {1, 2, 3};
  std::vector<std::byte> buf;
  wire::encode_request_batch_v2(reqs, budgets, /*attempt=*/0, buf);
  std::vector<PricingRequest> out;
  std::vector<std::uint64_t> dl;
  wire::FrameHeader hdr;
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t consumed = ~std::size_t{0};
    EXPECT_EQ(wire::decode_request_batch({buf.data(), len}, out, dl, hdr,
                                         consumed),
              wire::DecodeError::need_more)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireV2, HeaderValidationPerVersion) {
  PricingRequest q;
  std::vector<std::byte> v2;
  wire::encode_request_batch_v2({&q, 1}, {}, /*attempt=*/7, v2);
  std::vector<PricingRequest> out;
  std::size_t consumed = 0;

  // A nonzero byte 6 is the attempt counter in v2 (not bad_reserved)...
  ASSERT_EQ(wire::decode_request_batch(v2, out, consumed),
            wire::DecodeError::ok);
  // ...byte 7 stays reserved-zero in both versions...
  {
    std::vector<std::byte> bad = v2;
    bad[7] = std::byte{1};
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::bad_reserved);
  }
  // ...and a version this decoder does not speak is still rejected.
  {
    std::vector<std::byte> bad = v2;
    bad[4] = std::byte{3};
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::bad_version);
  }
  // Re-labeling the v2 frame as v1 fails at its first v1 violation: with
  // the attempt byte set it is bad_reserved (v1 keeps byte 6 zero); with
  // attempt 0 the 152-byte stride mismatches v1's 144 and it is
  // bad_length. The version byte decides the stride, no guessing.
  {
    std::vector<std::byte> bad = v2;
    bad[4] = std::byte{1};
    EXPECT_EQ(wire::decode_request_batch(bad, out, consumed),
              wire::DecodeError::bad_reserved);
  }
  {
    std::vector<std::byte> relabeled;
    wire::encode_request_batch_v2({&q, 1}, {}, /*attempt=*/0, relabeled);
    relabeled[4] = std::byte{1};
    EXPECT_EQ(wire::decode_request_batch(relabeled, out, consumed),
              wire::DecodeError::bad_length);
  }
}

TEST(WireV2, DeadlineExceededTravelsOnlyInV2Frames) {
  std::vector<PricingResult> results(1);
  results[0].status = Status::deadline_exceeded;
  results[0].message = "deadline exceeded: request went stale";

  // v2: round trips.
  std::vector<std::byte> buf;
  wire::encode_result_batch(results, buf, /*version=*/2);
  std::vector<PricingResult> back;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_result_batch(buf, back, consumed),
            wire::DecodeError::ok);
  EXPECT_EQ(back.at(0).status, Status::deadline_exceeded);

  // Encoding it into a v1 frame is a caller bug, not silent corruption.
  std::vector<std::byte> v1;
  EXPECT_THROW(wire::encode_result_batch(results, v1, /*version=*/1),
               std::length_error);

  // A hand-patched v1 frame claiming status 5 is rejected on decode: v1
  // peers never see a status byte they do not speak.
  results[0].status = Status::ok;
  results[0].message.clear();
  std::vector<std::byte> patched;
  wire::encode_result_batch(results, patched, /*version=*/1);
  patched[wire::kHeaderBytes] = std::byte{5};
  EXPECT_EQ(wire::decode_result_batch(patched, back, consumed),
            wire::DecodeError::bad_enum);
  // And out-of-range even for v2 is still bad_enum.
  std::vector<std::byte> patched2;
  wire::encode_result_batch(results, patched2, /*version=*/2);
  patched2[wire::kHeaderBytes] = std::byte{6};
  EXPECT_EQ(wire::decode_result_batch(patched2, back, consumed),
            wire::DecodeError::bad_enum);
}

TEST(WireV2, MixedVersionMultiFrameStreamWithInjectedFaults) {
  // A stream of v1 and v2 frames back to back, decoded the way serve()
  // does — then the same stream with faults injected between and inside
  // frames. The decoder must peel clean frames exactly and convert every
  // fault into a DecodeError at the frame it corrupts, never before.
  std::vector<PricingRequest> a(2), b(1), c(3);
  a[0].T = 11;
  b[0].T = 22;
  c[0].T = 33;
  const std::uint64_t budgets_b[] = {1234};
  std::vector<std::byte> stream;
  wire::encode_request_batch(a, stream);
  const std::size_t a_end = stream.size();
  wire::encode_request_batch_v2(b, budgets_b, /*attempt=*/2, stream);
  const std::size_t b_end = stream.size();
  wire::encode_request_batch(c, stream);

  const auto drain = [](std::span<const std::byte> cursor,
                        std::vector<std::size_t>& counts) {
    std::vector<PricingRequest> out;
    std::vector<std::uint64_t> dl;
    wire::FrameHeader hdr;
    for (;;) {
      std::size_t consumed = 0;
      const wire::DecodeError e =
          wire::decode_request_batch(cursor, out, dl, hdr, consumed);
      if (e != wire::DecodeError::ok) return e;
      counts.push_back(out.size());
      cursor = cursor.subspan(consumed);
      if (cursor.empty()) return wire::DecodeError::ok;
    }
  };

  {  // clean stream: three frames, exact counts
    std::vector<std::size_t> counts;
    EXPECT_EQ(drain(stream, counts), wire::DecodeError::ok);
    EXPECT_EQ(counts, (std::vector<std::size_t>{2, 1, 3}));
  }
  {  // truncation on a frame boundary: the tail frame reports need_more
    std::vector<std::size_t> counts;
    EXPECT_EQ(drain({stream.data(), b_end + 7}, counts),
              wire::DecodeError::need_more);
    EXPECT_EQ(counts, (std::vector<std::size_t>{2, 1}));
  }
  {  // a fault INSIDE the middle frame: first frame still decodes, the
     // corrupted one errors (version byte of frame b)
    std::vector<std::byte> bad(stream.begin(), stream.end());
    bad[a_end + 4] = std::byte{9};
    std::vector<std::size_t> counts;
    EXPECT_EQ(drain(bad, counts), wire::DecodeError::bad_version);
    EXPECT_EQ(counts, (std::vector<std::size_t>{2}));
  }
  {  // a flipped bit BETWEEN frames (b's magic): desync diagnosed at b
    std::vector<std::byte> bad(stream.begin(), stream.end());
    bad[a_end] = std::byte{0x7e};
    std::vector<std::size_t> counts;
    EXPECT_EQ(drain(bad, counts), wire::DecodeError::bad_magic);
    EXPECT_EQ(counts, (std::vector<std::size_t>{2}));
  }
  {  // single-byte fuzz across the whole mixed stream: never a crash
    std::vector<PricingRequest> out;
    std::vector<std::uint64_t> dl;
    wire::FrameHeader hdr;
    for (std::size_t off = 0; off < stream.size(); ++off) {
      std::vector<std::byte> bad(stream.begin(), stream.end());
      bad[off] = static_cast<std::byte>(static_cast<std::uint8_t>(bad[off]) ^
                                        0xa5u);
      std::span<const std::byte> cursor{bad};
      for (;;) {
        std::size_t consumed = 0;
        if (wire::decode_request_batch(cursor, out, dl, hdr, consumed) !=
            wire::DecodeError::ok)
          break;
        cursor = cursor.subspan(consumed);
        if (cursor.empty()) break;
      }
    }
  }
}

TEST(Wire, EncodeAppendsSoFramesPackIntoOneWrite) {
  PricingRequest q;
  std::vector<std::byte> buf;
  wire::encode_request_batch({&q, 1}, buf);
  const std::size_t one = buf.size();
  wire::encode_request_batch({&q, 1}, buf);
  EXPECT_EQ(buf.size(), 2 * one);  // first frame untouched, second appended
  wire::FrameHeader hdr;
  EXPECT_EQ(wire::peek_header(buf, hdr), wire::DecodeError::ok);
  EXPECT_EQ(hdr.kind, wire::Kind::request_batch);
  EXPECT_EQ(hdr.count, 1u);
}

}  // namespace
