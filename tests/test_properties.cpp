// Cross-cutting no-arbitrage and consistency properties, swept over a
// parameter lattice with TEST_P. These catch derivation mistakes that
// point comparisons miss (wrong discounting, wrong drift, flipped taps).

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/topm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

struct Pt {
  double S, K, R, V, Y;
};

OptionSpec to_spec(const Pt& p) {
  OptionSpec s;
  s.S = p.S;
  s.K = p.K;
  s.R = p.R;
  s.V = p.V;
  s.Y = p.Y;
  return s;
}

class PropertySweep : public ::testing::TestWithParam<Pt> {};

TEST_P(PropertySweep, AmericanDominatesEuropean) {
  const OptionSpec s = to_spec(GetParam());
  const std::int64_t T = 512;
  EXPECT_GE(bopm::american_call_fft(s, T),
            bopm::european_call_fft(s, T) - 1e-9);
  EXPECT_GE(bopm::american_put_fft_direct(s, T),
            bopm::european_put_fft(s, T) - 1e-9);
}

TEST_P(PropertySweep, AmericanDominatesIntrinsic) {
  const OptionSpec s = to_spec(GetParam());
  const std::int64_t T = 512;
  EXPECT_GE(bopm::american_call_fft(s, T), std::max(0.0, s.S - s.K) - 1e-9);
  EXPECT_GE(bopm::american_put_fft_direct(s, T),
            std::max(0.0, s.K - s.S) - 1e-9);
}

TEST_P(PropertySweep, PriceBounds) {
  const OptionSpec s = to_spec(GetParam());
  const std::int64_t T = 512;
  const double c = bopm::american_call_fft(s, T);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, s.S + 1e-9);
  const double p = bopm::american_put_fft_direct(s, T);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, s.K + 1e-9);
}

TEST_P(PropertySweep, EuropeanPutCallParityOnLattice) {
  // C - P = S e^{-Y tau} - K e^{-R tau} holds exactly on the lattice for
  // European options (linearity of the rollback).
  const OptionSpec s = to_spec(GetParam());
  const std::int64_t T = 512;
  const double lhs =
      bopm::european_call_fft(s, T) - bopm::european_put_fft(s, T);
  const double rhs = s.S * std::exp(-s.Y * s.expiry_years) -
                     s.K * std::exp(-s.R * s.expiry_years);
  EXPECT_NEAR(lhs, rhs, 1e-8 * std::max(1.0, std::abs(rhs)));
}

TEST_P(PropertySweep, ModelsAgreeOnEuropeanLimit) {
  const OptionSpec s = to_spec(GetParam());
  const double bs_ref = bs::european_call(s);
  EXPECT_NEAR(bopm::european_call_fft(s, 4096), bs_ref,
              2e-3 * std::max(1.0, bs_ref) + 2e-3);
  EXPECT_NEAR(topm::european_call_fft(s, 2048), bs_ref,
              2e-3 * std::max(1.0, bs_ref) + 2e-3);
}

TEST_P(PropertySweep, TrinomialAndBinomialAmericanAgree) {
  const OptionSpec s = to_spec(GetParam());
  const double b = bopm::american_call_fft(s, 2048);
  const double t = topm::american_call_fft(s, 1024);
  EXPECT_NEAR(b, t, 5e-3 * std::max(1.0, b) + 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, PropertySweep,
    ::testing::Values(Pt{127.62, 130, 0.00163, 0.2, 0.0163},
                      Pt{100, 100, 0.05, 0.2, 0.02},
                      Pt{100, 80, 0.02, 0.35, 0.06},
                      Pt{100, 125, 0.07, 0.15, 0.01},
                      Pt{40, 50, 0.01, 0.5, 0.03},
                      Pt{250, 200, 0.04, 0.25, 0.08}));

class StrikeMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(StrikeMonotonicity, CallDecreasesPutIncreasesInStrike) {
  const double V = GetParam();
  OptionSpec s = paper_spec();
  s.V = V;
  double prev_call = 1e18, prev_put = -1.0;
  for (double K : {90.0, 110.0, 130.0, 150.0}) {
    s.K = K;
    const double c = bopm::american_call_fft(s, 256);
    const double p = bopm::american_put_fft_direct(s, 256);
    EXPECT_LT(c, prev_call) << "K=" << K;
    EXPECT_GT(p, prev_put) << "K=" << K;
    prev_call = c;
    prev_put = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Vols, StrikeMonotonicity,
                         ::testing::Values(0.1, 0.2, 0.4));

TEST(Convexity, AmericanCallConvexInStrike) {
  OptionSpec s = paper_spec();
  const std::int64_t T = 512;
  const auto at = [&](double K) {
    OptionSpec x = s;
    x.K = K;
    return bopm::american_call_fft(x, T);
  };
  for (double K : {100.0, 120.0, 140.0}) {
    const double mid = at(K);
    const double avg = 0.5 * (at(K - 10.0) + at(K + 10.0));
    EXPECT_LE(mid, avg + 1e-9) << "K=" << K;
  }
}

TEST(Scaling, PriceIsHomogeneousInSpotAndStrike) {
  // V(aS, aK) = a V(S, K) for any a > 0 (lattice is scale-free in price).
  const OptionSpec s = paper_spec();
  OptionSpec scaled = s;
  scaled.S *= 3.0;
  scaled.K *= 3.0;
  const std::int64_t T = 400;
  EXPECT_NEAR(bopm::american_call_fft(scaled, T),
              3.0 * bopm::american_call_fft(s, T), 1e-8);
  EXPECT_NEAR(bsm::american_put_fft(scaled, T),
              3.0 * bsm::american_put_fft(s, T), 1e-8);
}

TEST(Refinement, AmericanPriceStabilizesWithT) {
  const OptionSpec s = paper_spec();
  const double a = bopm::american_call_fft(s, 4096);
  const double b = bopm::american_call_fft(s, 8192);
  const double c = bopm::american_call_fft(s, 16384);
  EXPECT_LT(std::abs(c - b), std::abs(b - a) + 1e-6);
  EXPECT_LT(std::abs(c - b), 1e-3);
}

}  // namespace
