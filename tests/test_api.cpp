// The price() facade must dispatch to the same implementations the direct
// calls reach, and reject meaningless combinations loudly.

#include <gtest/gtest.h>

#include <stdexcept>

#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/pricing/topm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

TEST(Api, BopmCallDispatch) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 300;
  EXPECT_DOUBLE_EQ(price(spec, T, Model::bopm, Right::call),
                   bopm::american_call_fft(spec, T));
  EXPECT_DOUBLE_EQ(
      price(spec, T, Model::bopm, Right::call, Style::american,
            Engine::vanilla),
      bopm::american_call_vanilla(spec, T));
  EXPECT_NEAR(price(spec, T, Model::bopm, Right::call, Style::american,
                    Engine::quantlib),
              bopm::american_call_vanilla(spec, T), 1e-9);
  EXPECT_NEAR(price(spec, T, Model::bopm, Right::call, Style::american,
                    Engine::tiled),
              bopm::american_call_vanilla(spec, T), 1e-10);
  EXPECT_NEAR(price(spec, T, Model::bopm, Right::call, Style::american,
                    Engine::cache_oblivious),
              bopm::american_call_vanilla(spec, T), 1e-10);
}

TEST(Api, PutAndOtherModels) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 200;
  EXPECT_DOUBLE_EQ(price(spec, T, Model::bopm, Right::put),
                   bopm::american_put_fft_direct(spec, T));
  EXPECT_DOUBLE_EQ(price(spec, T, Model::topm, Right::call),
                   topm::american_call_fft(spec, T));
  EXPECT_DOUBLE_EQ(price(spec, T, Model::bsm, Right::put),
                   bsm::american_put_fft(spec, T));
}

TEST(Api, EuropeanDispatch) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 200;
  EXPECT_DOUBLE_EQ(
      price(spec, T, Model::bopm, Right::call, Style::european),
      bopm::european_call_fft(spec, T));
  EXPECT_DOUBLE_EQ(
      price(spec, T, Model::bsm, Right::put, Style::european),
      bsm::european_put_fdm(spec, T));
}

TEST(Api, UnsupportedCombinationsThrow) {
  const OptionSpec spec = paper_spec();
  EXPECT_THROW((void)price(spec, 100, Model::bsm, Right::call),
               std::invalid_argument);
  EXPECT_THROW((void)price(spec, 100, Model::topm, Right::call, Style::american,
                     Engine::quantlib),
               std::invalid_argument);
  EXPECT_THROW((void)price(spec, 100, Model::bopm, Right::put, Style::american,
                     Engine::tiled),
               std::invalid_argument);
}

TEST(Api, ToStringRoundTrips) {
  EXPECT_EQ(to_string(Model::bopm), "bopm");
  EXPECT_EQ(to_string(Model::topm), "topm");
  EXPECT_EQ(to_string(Model::bsm), "bsm");
  EXPECT_EQ(to_string(Right::call), "call");
  EXPECT_EQ(to_string(Style::european), "european");
  EXPECT_EQ(to_string(Engine::cache_oblivious), "cache-oblivious");
}

TEST(Api, FreeFunctionIsThinWrapperOverSession) {
  // price() now routes through a temporary Pricer session; the values must
  // be bit-identical to a session held by the caller.
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 300;
  Pricer session;
  PricingRequest req;
  req.spec = spec;
  req.T = T;
  for (Right r : {Right::call, Right::put}) {
    req.right = r;
    EXPECT_EQ(price(spec, T, Model::bopm, r), session.price_one(req).price);
  }
}

TEST(Api, UnsupportedMessageNamesTheCombination) {
  try {
    (void)price(paper_spec(), 100, Model::bsm, Right::call);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bsm/call/american/fft"),
              std::string::npos);
  }
}

}  // namespace
