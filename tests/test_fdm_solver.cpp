// Tests for S6, the FDM trapezoid solver: advance() must agree with pure
// naive stepping, margins must be respected, and the boundary must obey
// Theorem 4.3's one-cell bound after the initial jump rows.

#include <gtest/gtest.h>

#include <vector>

#include "amopt/core/fdm_solver.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/params.hpp"

namespace {

using namespace amopt;
using pricing::OptionSpec;

struct FdmRig {
  pricing::BsmParams prm;
  core::FdmRow row0;
};

FdmRig make_setup(const OptionSpec& spec, std::int64_t T, std::int64_t kr0) {
  FdmRig s;
  s.prm = pricing::derive_bsm(spec, T);
  s.row0.n = 0;
  s.row0.f = 0;
  s.row0.kr = kr0;
  s.row0.red.assign(static_cast<std::size_t>(kr0), 0.0);
  return s;
}

core::FdmRow naive_advance(core::FdmSolver& solver, core::FdmRow row,
                           std::int64_t L, bool first_rows_unbounded) {
  for (std::int64_t s = 0; s < L; ++s)
    row = solver.step_naive(row, first_rows_unbounded && row.n < 2);
  return row;
}

class FdmConfigs : public ::testing::TestWithParam<int> {};

TEST_P(FdmConfigs, AdvanceMatchesNaiveStepping) {
  const int base = GetParam();
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 512;
  FdmRig s = make_setup(spec, T, 2 * T + 8);
  const pricing::bsm::PutGreen green(s.prm.ds, 8 * T);
  core::SolverConfig cfg;
  cfg.base_case = base;
  core::FdmSolver fast({{s.prm.b, s.prm.c, s.prm.a}, -1}, green, cfg);
  core::FdmSolver slow({{s.prm.b, s.prm.c, s.prm.a}, -1}, green, {});

  // Jump rows first (Y > R in the paper spec).
  core::FdmRow row = s.row0;
  row = fast.step_naive(row, true);
  row = fast.step_naive(row, true);

  const std::int64_t L = (T - 2) / 2;
  const core::FdmRow a = fast.advance(row, L);
  const core::FdmRow b = naive_advance(slow, row, L, false);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.kr, b.kr);
  ASSERT_EQ(a.red.size(), b.red.size());
  for (std::size_t t = 0; t < a.red.size(); ++t)
    EXPECT_NEAR(a.red[t], b.red[t], 1e-10) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(BaseCases, FdmConfigs,
                         ::testing::Values(2, 4, 10, 32, 128));

TEST(FdmSolver, RepeatedAdvanceMatchesOneBigAdvance) {
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 300;
  FdmRig s = make_setup(spec, T, 4 * T);
  const pricing::bsm::PutGreen green(s.prm.ds, 8 * T);
  core::FdmSolver solver({{s.prm.b, s.prm.c, s.prm.a}, -1}, green, {});

  core::FdmRow row = s.row0;
  row = solver.step_naive(row, true);
  row = solver.step_naive(row, true);

  core::FdmRow many = row;
  for (std::int64_t L : {60L, 40L, 20L, 10L}) many = solver.advance(many, L);
  const core::FdmRow once = solver.advance(row, 130);
  EXPECT_EQ(many.n, once.n);
  EXPECT_EQ(many.f, once.f);
  EXPECT_EQ(many.kr, once.kr);
  ASSERT_EQ(many.red.size(), once.red.size());
  for (std::size_t t = 0; t < many.red.size(); ++t)
    EXPECT_NEAR(many.red[t], once.red[t], 1e-10);
}

TEST(FdmSolver, BoundaryObeysTheorem43AfterJumpRows) {
  // After the first two rows, 0 <= f_n - f_{n+1} <= 1 must hold: this is
  // the paper's Theorem 4.3 (requires the monotone scheme a,b,c >= 0,
  // guaranteed by derive_bsm).
  for (double Y : {0.0, 0.0163, 0.05}) {
    OptionSpec spec = pricing::paper_spec();
    spec.Y = Y;
    const std::int64_t T = 400;
    FdmRig s = make_setup(spec, T, 2 * T + 8);
    const pricing::bsm::PutGreen green(s.prm.ds, 8 * T);
    core::FdmSolver solver({{s.prm.b, s.prm.c, s.prm.a}, -1}, green, {});
    core::FdmRow row = s.row0;
    row = solver.step_naive(row, true);
    row = solver.step_naive(row, true);
    std::int64_t prev_f = row.f;
    for (std::int64_t n = row.n; n < T; ++n) {
      row = solver.step_naive(row);
      EXPECT_LE(row.f, prev_f) << "Y=" << Y << " n=" << n;
      EXPECT_GE(row.f, prev_f - 1) << "Y=" << Y << " n=" << n;
      prev_f = row.f;
    }
  }
}

TEST(FdmSolver, SchemeIsMonotone) {
  const OptionSpec spec = pricing::paper_spec();
  for (std::int64_t T : {16L, 256L, 4096L}) {
    const auto prm = pricing::derive_bsm(spec, T);
    EXPECT_GE(prm.a, 0.0);
    EXPECT_GE(prm.b, 0.0);
    EXPECT_GE(prm.c, 0.0);
    EXPECT_LE(prm.a + prm.b + prm.c, 1.0 + 1e-12);  // sub-stochastic
  }
}

TEST(FdmSolver, InitialBoundaryJumpMatchesTheory) {
  // With Y > R the discrete boundary after one step sits near
  // ln(R/Y)/ds (see DESIGN.md); with Y <= R it stays at 0 or drops by O(1).
  OptionSpec spec = pricing::paper_spec();  // Y = 10 * R
  const std::int64_t T = 1000;
  FdmRig s = make_setup(spec, T, 2 * T + 8);
  const pricing::bsm::PutGreen green(s.prm.ds, 8 * T);
  core::FdmSolver solver({{s.prm.b, s.prm.c, s.prm.a}, -1}, green, {});
  const core::FdmRow row1 = solver.step_naive(s.row0, true);
  const double expected_k = std::log(spec.R / spec.Y) / s.prm.ds;
  EXPECT_NEAR(static_cast<double>(row1.f), expected_k,
              std::abs(expected_k) * 0.05 + 3.0);
}

}  // namespace
