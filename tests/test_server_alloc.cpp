// Steady-state allocation guarantee of the shard hot path (DESIGN.md §8):
// once warm, a full daemon round trip — decode request frame, coalesce,
// price through the shard session, encode and write the result frame —
// must perform ZERO heap allocations. Boundary-engine quotes drive the
// check (their pricing is allocation-free at steady state, DESIGN.md §6,
// so any count here is the service plane's own fault). Like the other
// counter binaries this file replaces global operator new/delete and must
// stay one executable; the CI server-smoke job enforces the same bar on
// the bench's allocs-steady series.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"

#include "counting_new.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

[[nodiscard]] std::uint64_t allocs() { return counting_new::count(); }

[[nodiscard]] std::vector<PricingRequest> boundary_chain() {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.model = Model::bsm;
  q.style = Style::american;
  q.engine = Engine::boundary;
  for (Right r : {Right::put, Right::call}) {
    q.right = r;
    for (double k : {120.0, 130.0}) {
      q.spec.K = k;
      reqs.push_back(q);
    }
  }
  return reqs;
}

TEST(ServerAlloc, SteadyStateSubmitPathIsAllocationFree) {
  // Width 1 pins every shard drain to the pool's single housekeeping
  // worker, so exactly one thread arena warms up and stays warm — the
  // counter then measures the hot path, not scheduler placement.
  ThreadScope width(1);
  ServerConfig cfg;
  cfg.pricer.parallel = false;  // the shard drain serves items serially
  cfg.coalesce_window_us = 0;
  Server server(cfg);

  const std::vector<PricingRequest> reqs = boundary_chain();
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;  // reusable handle: no per-round-trip state

  // Warm-up: queue ring, batch buffers, session node table, thread arena
  // and result capacities all reach their high-water marks.
  for (int i = 0; i < 8; ++i) {
    server.submit(reqs, out.data(), done);
    done.wait();
  }
  for (const PricingResult& r : out) ASSERT_EQ(r.status, Status::ok);
  const std::vector<PricingResult> want = out;

  const std::uint64_t before = allocs();
  int mismatches = 0;
  for (int rep = 0; rep < 64; ++rep) {
    server.submit(reqs, out.data(), done);
    done.wait();
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i].price != want[i].price) ++mismatches;
  }
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << "the steady-state submit->price->scatter path must not allocate";
  EXPECT_EQ(mismatches, 0);
}

TEST(ServerAlloc, AdmissionRejectionPathIsAllocationFree) {
  // Shedding load is exactly when the daemon must not grow the heap: the
  // rejection path uses fixed hint literals and reuses each result's
  // message capacity, so after one warm-up round it is 0-allocation.
  ThreadScope width(1);
  ServerConfig cfg;
  cfg.pricer.parallel = false;
  cfg.coalesce_window_us = 0;
  cfg.admit_scratch_bytes = 1;  // any real pricing overshoots this ceiling
  Server server(cfg);

  const std::vector<PricingRequest> reqs = boundary_chain();
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;

  // First round is admitted (the ceiling compares against the shard's
  // last-published snapshot, which starts at zero) and publishes a real
  // scratch figure; every round after that is rejected at admission.
  server.submit(reqs, out.data(), done);
  done.wait();
  for (const PricingResult& r : out) ASSERT_EQ(r.status, Status::ok);
  server.submit(reqs, out.data(), done);  // warm the rejection capacities
  done.wait();
  for (const PricingResult& r : out) ASSERT_EQ(r.status, Status::overloaded);

  const std::uint64_t before = allocs();
  for (int rep = 0; rep < 64; ++rep) {
    server.submit(reqs, out.data(), done);
    done.wait();
  }
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << "shedding under overload must itself be allocation-free";
  for (const PricingResult& r : out) {
    EXPECT_EQ(r.status, Status::overloaded);
    EXPECT_NE(r.message.find("retry"), std::string::npos);
  }
}

TEST(ServerAlloc, SteadyStateWireRoundTripIsAllocationFree) {
  // The full daemon loop over the loopback transport: encode on the
  // client, decode + coalesce + price + encode on the daemon, decode the
  // reply on the client — all through reused buffers on both sides.
  ThreadScope width(1);  // one drain worker, one warm arena (see above)
  ServerConfig cfg;
  cfg.pricer.parallel = false;
  cfg.coalesce_window_us = 0;
  Server server(cfg);
  auto [client, daemon] = loopback_pair();
  std::thread conn([&server, t = daemon.get()] { server.serve(*t); });

  const std::vector<PricingRequest> reqs = boundary_chain();
  std::vector<std::byte> frame;
  std::vector<std::byte> inbuf(std::size_t{1} << 16);
  std::vector<PricingResult> results;

  const auto round_trip = [&] {
    frame.clear();
    wire::encode_request_batch(reqs, frame);
    ASSERT_TRUE(client->write_all(frame));
    std::size_t have = 0;
    for (;;) {
      std::size_t consumed = 0;
      const wire::DecodeError e = wire::decode_result_batch(
          {inbuf.data(), have}, results, consumed);
      if (e == wire::DecodeError::ok) break;
      ASSERT_EQ(e, wire::DecodeError::need_more);
      ASSERT_LT(have, inbuf.size());
      const std::size_t n =
          client->read_some({inbuf.data() + have, inbuf.size() - have});
      ASSERT_GT(n, 0u);
      have += n;
    }
    ASSERT_EQ(results.size(), reqs.size());
  };

  for (int i = 0; i < 8; ++i) round_trip();  // warm-up
  for (const PricingResult& r : results) ASSERT_EQ(r.status, Status::ok);

  const std::uint64_t before = allocs();
  for (int rep = 0; rep < 64; ++rep) round_trip();
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u)
      << "the steady-state decode->price->encode loop must not allocate";

  client->close();
  conn.join();
}

}  // namespace
