// Tests for S2: FFT and direct convolution/correlation agree with each
// other and with hand-computed cases across a size sweep.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "amopt/fft/convolution.hpp"

namespace {

using namespace amopt;

std::vector<double> random_vec(std::size_t n, unsigned seed,
                               double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Convolution, HandComputedFull) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0};
  const std::vector<double> expect{4.0, 13.0, 22.0, 15.0};
  const auto direct = conv::convolve_full_direct(a, b);
  ASSERT_EQ(direct.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(direct[i], expect[i], 1e-12);
  conv::Policy fft_only{conv::Policy::Path::fft};
  const auto viafft = conv::convolve_full(a, b, fft_only);
  ASSERT_EQ(viafft.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(viafft[i], expect[i], 1e-12);
}

TEST(Convolution, EmptyInputsGiveEmptyResult) {
  EXPECT_TRUE(conv::convolve_full({}, std::vector<double>{1.0}).empty());
  EXPECT_TRUE(conv::convolve_full(std::vector<double>{1.0}, {}).empty());
}

struct ConvCase {
  std::size_t na, nb;
};

class ConvolutionSizes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvolutionSizes, FftMatchesDirect) {
  const auto [na, nb] = GetParam();
  const auto a = random_vec(na, static_cast<unsigned>(na * 31 + nb));
  const auto b = random_vec(nb, static_cast<unsigned>(nb * 17 + na));
  const auto ref = conv::convolve_full_direct(a, b);
  const auto got = conv::convolve_full(a, b, {conv::Policy::Path::fft});
  ASSERT_EQ(ref.size(), got.size());
  const double tol = 1e-12 * static_cast<double>(na + nb);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(got[i], ref[i], tol) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvolutionSizes,
    ::testing::Values(ConvCase{1, 1}, ConvCase{1, 9}, ConvCase{2, 2},
                      ConvCase{3, 8}, ConvCase{17, 17}, ConvCase{64, 3},
                      ConvCase{100, 100}, ConvCase{255, 257},
                      ConvCase{1024, 33}, ConvCase{5000, 5000}));

class CorrelationSizes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(CorrelationSizes, ValidCorrelationMatchesDirect) {
  const auto [n_in, n_k] = GetParam();
  if (n_in < n_k) GTEST_SKIP();
  const auto in = random_vec(n_in, static_cast<unsigned>(n_in + 3 * n_k));
  const auto kernel = random_vec(n_k, static_cast<unsigned>(n_k + 5));
  const std::size_t n_out = n_in - n_k + 1;
  std::vector<double> ref(n_out), got(n_out);
  conv::correlate_valid_direct(in, kernel, ref);
  conv::correlate_valid(in, kernel, got, {conv::Policy::Path::fft});
  const double tol = 1e-12 * static_cast<double>(n_in);
  for (std::size_t i = 0; i < n_out; ++i)
    EXPECT_NEAR(got[i], ref[i], tol) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CorrelationSizes,
    ::testing::Values(ConvCase{1, 1}, ConvCase{9, 1}, ConvCase{9, 9},
                      ConvCase{100, 7}, ConvCase{257, 129},
                      ConvCase{1024, 1024}, ConvCase{4096, 513},
                      ConvCase{10000, 2001}));

TEST(Correlation, ShortOutputUsesInputPrefixOnly) {
  // out.size() < in.size() - kernel.size() + 1 is allowed: the tail of the
  // input must not influence the result.
  const auto in = random_vec(64, 11);
  auto in_garbled = in;
  for (std::size_t i = 40; i < in_garbled.size(); ++i) in_garbled[i] = 1e9;
  const auto kernel = random_vec(8, 12);
  std::vector<double> a(20), b(20);
  conv::correlate_valid(in, kernel, a, {conv::Policy::Path::fft});
  conv::correlate_valid(in_garbled, kernel, b, {conv::Policy::Path::fft});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(Correlation, AutomaticPolicyMatchesForcedPaths) {
  const auto in = random_vec(2048, 21);
  const auto kernel = random_vec(301, 22);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  std::vector<double> d(n_out), f(n_out), a(n_out);
  conv::correlate_valid(in, kernel, d, {conv::Policy::Path::direct});
  conv::correlate_valid(in, kernel, f, {conv::Policy::Path::fft});
  conv::correlate_valid(in, kernel, a, {});
  for (std::size_t i = 0; i < n_out; ++i) {
    EXPECT_NEAR(d[i], f[i], 1e-9);
    EXPECT_NEAR(d[i], a[i], 1e-9);
  }
}

TEST(Correlation, EmptyOutputIsNoop) {
  const auto in = random_vec(16, 30);
  const auto kernel = random_vec(4, 31);
  std::vector<double> out;
  conv::correlate_valid(in, kernel, out);  // must not crash
  SUCCEED();
}

TEST(Convolution, PackedComplexPathMatchesRealPath) {
  // The legacy two-for-one packed pipeline stays available for benchmarking;
  // it must agree with both the direct loop and the real-input path.
  for (std::size_t n : {33u, 256u, 1000u, 4096u}) {
    const auto a = random_vec(n, static_cast<unsigned>(n + 51));
    const auto b = random_vec(n / 2 + 1, static_cast<unsigned>(n + 52));
    const auto ref = conv::convolve_full_direct(a, b);
    const auto real_path =
        conv::convolve_full(a, b, {conv::Policy::Path::fft});
    const auto packed =
        conv::convolve_full(a, b, {conv::Policy::Path::fft_packed});
    ASSERT_EQ(packed.size(), ref.size());
    ASSERT_EQ(real_path.size(), ref.size());
    const double tol = 1e-11 * static_cast<double>(n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(real_path[i], ref[i], tol) << "n=" << n << " i=" << i;
      EXPECT_NEAR(packed[i], ref[i], tol) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Correlation, PackedComplexPathMatchesDirect) {
  const auto in = random_vec(3000, 61);
  const auto kernel = random_vec(500, 62);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  std::vector<double> ref(n_out), packed(n_out);
  conv::correlate_valid_direct(in, kernel, ref);
  conv::correlate_valid(in, kernel, packed,
                        {conv::Policy::Path::fft_packed});
  const double tol = 1e-11 * static_cast<double>(in.size());
  for (std::size_t i = 0; i < n_out; ++i)
    EXPECT_NEAR(packed[i], ref[i], tol);
}

TEST(Convolution, CommutesUnderFft) {
  const auto a = random_vec(100, 41);
  const auto b = random_vec(37, 43);
  const auto ab = conv::convolve_full(a, b, {conv::Policy::Path::fft});
  const auto ba = conv::convolve_full(b, a, {conv::Policy::Path::fft});
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i) EXPECT_NEAR(ab[i], ba[i], 1e-10);
}

}  // namespace
