// Tests for S2: FFT and direct convolution/correlation agree with each
// other and with hand-computed cases across a size sweep.

#include <gtest/gtest.h>

#include <random>
#include <span>
#include <vector>

#include "amopt/fft/convolution.hpp"

namespace {

using namespace amopt;

std::vector<double> random_vec(std::size_t n, unsigned seed,
                               double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Convolution, HandComputedFull) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0};
  const std::vector<double> expect{4.0, 13.0, 22.0, 15.0};
  const auto direct = conv::convolve_full_direct(a, b);
  ASSERT_EQ(direct.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(direct[i], expect[i], 1e-12);
  conv::Policy fft_only{conv::Policy::Path::fft};
  const auto viafft = conv::convolve_full(a, b, fft_only);
  ASSERT_EQ(viafft.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_NEAR(viafft[i], expect[i], 1e-12);
}

TEST(Convolution, EmptyInputsGiveEmptyResult) {
  EXPECT_TRUE(conv::convolve_full({}, std::vector<double>{1.0}).empty());
  EXPECT_TRUE(conv::convolve_full(std::vector<double>{1.0}, {}).empty());
}

struct ConvCase {
  std::size_t na, nb;
};

class ConvolutionSizes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvolutionSizes, FftMatchesDirect) {
  const auto [na, nb] = GetParam();
  const auto a = random_vec(na, static_cast<unsigned>(na * 31 + nb));
  const auto b = random_vec(nb, static_cast<unsigned>(nb * 17 + na));
  const auto ref = conv::convolve_full_direct(a, b);
  const auto got = conv::convolve_full(a, b, {conv::Policy::Path::fft});
  ASSERT_EQ(ref.size(), got.size());
  const double tol = 1e-12 * static_cast<double>(na + nb);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(got[i], ref[i], tol) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvolutionSizes,
    ::testing::Values(ConvCase{1, 1}, ConvCase{1, 9}, ConvCase{2, 2},
                      ConvCase{3, 8}, ConvCase{17, 17}, ConvCase{64, 3},
                      ConvCase{100, 100}, ConvCase{255, 257},
                      ConvCase{1024, 33}, ConvCase{5000, 5000}));

class CorrelationSizes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(CorrelationSizes, ValidCorrelationMatchesDirect) {
  const auto [n_in, n_k] = GetParam();
  if (n_in < n_k) GTEST_SKIP();
  const auto in = random_vec(n_in, static_cast<unsigned>(n_in + 3 * n_k));
  const auto kernel = random_vec(n_k, static_cast<unsigned>(n_k + 5));
  const std::size_t n_out = n_in - n_k + 1;
  std::vector<double> ref(n_out), got(n_out);
  conv::correlate_valid_direct(in, kernel, ref);
  conv::correlate_valid(in, kernel, got, {conv::Policy::Path::fft});
  const double tol = 1e-12 * static_cast<double>(n_in);
  for (std::size_t i = 0; i < n_out; ++i)
    EXPECT_NEAR(got[i], ref[i], tol) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CorrelationSizes,
    ::testing::Values(ConvCase{1, 1}, ConvCase{9, 1}, ConvCase{9, 9},
                      ConvCase{100, 7}, ConvCase{257, 129},
                      ConvCase{1024, 1024}, ConvCase{4096, 513},
                      ConvCase{10000, 2001}));

TEST(Correlation, ShortOutputUsesInputPrefixOnly) {
  // out.size() < in.size() - kernel.size() + 1 is allowed: the tail of the
  // input must not influence the result.
  const auto in = random_vec(64, 11);
  auto in_garbled = in;
  for (std::size_t i = 40; i < in_garbled.size(); ++i) in_garbled[i] = 1e9;
  const auto kernel = random_vec(8, 12);
  std::vector<double> a(20), b(20);
  conv::correlate_valid(in, kernel, a, {conv::Policy::Path::fft});
  conv::correlate_valid(in_garbled, kernel, b, {conv::Policy::Path::fft});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(Correlation, AutomaticPolicyMatchesForcedPaths) {
  const auto in = random_vec(2048, 21);
  const auto kernel = random_vec(301, 22);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  std::vector<double> d(n_out), f(n_out), a(n_out);
  conv::correlate_valid(in, kernel, d, {conv::Policy::Path::direct});
  conv::correlate_valid(in, kernel, f, {conv::Policy::Path::fft});
  conv::correlate_valid(in, kernel, a, {});
  for (std::size_t i = 0; i < n_out; ++i) {
    EXPECT_NEAR(d[i], f[i], 1e-9);
    EXPECT_NEAR(d[i], a[i], 1e-9);
  }
}

TEST(Correlation, EmptyOutputIsNoop) {
  const auto in = random_vec(16, 30);
  const auto kernel = random_vec(4, 31);
  std::vector<double> out;
  conv::correlate_valid(in, kernel, out);  // must not crash
  SUCCEED();
}

TEST(Convolution, PackedComplexPathMatchesRealPath) {
  // The legacy two-for-one packed pipeline stays available for benchmarking;
  // it must agree with both the direct loop and the real-input path.
  for (std::size_t n : {33u, 256u, 1000u, 4096u}) {
    const auto a = random_vec(n, static_cast<unsigned>(n + 51));
    const auto b = random_vec(n / 2 + 1, static_cast<unsigned>(n + 52));
    const auto ref = conv::convolve_full_direct(a, b);
    const auto real_path =
        conv::convolve_full(a, b, {conv::Policy::Path::fft});
    const auto packed =
        conv::convolve_full(a, b, {conv::Policy::Path::fft_packed});
    ASSERT_EQ(packed.size(), ref.size());
    ASSERT_EQ(real_path.size(), ref.size());
    const double tol = 1e-11 * static_cast<double>(n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(real_path[i], ref[i], tol) << "n=" << n << " i=" << i;
      EXPECT_NEAR(packed[i], ref[i], tol) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Correlation, PackedComplexPathMatchesDirect) {
  const auto in = random_vec(3000, 61);
  const auto kernel = random_vec(500, 62);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  std::vector<double> ref(n_out), packed(n_out);
  conv::correlate_valid_direct(in, kernel, ref);
  conv::correlate_valid(in, kernel, packed,
                        {conv::Policy::Path::fft_packed});
  const double tol = 1e-11 * static_cast<double>(in.size());
  for (std::size_t i = 0; i < n_out; ++i)
    EXPECT_NEAR(packed[i], ref[i], tol);
}

TEST(Convolution, AliasedOperandsMatchTwoOperandProduct) {
  // convolve_full(a, a) takes the one-transform csquare fast path; it must
  // reproduce the two-operand product on a bit-distinct copy of the same
  // values (exactly at the scalar dispatch level — asserted with level
  // control in test_simd — and within FFT round-off at the ambient level,
  // where AVX-512's FMA tails may differ in the last ulps).
  for (const std::size_t n : {33u, 256u, 1000u, 4096u}) {
    const auto a = random_vec(n, static_cast<unsigned>(n + 71));
    const std::vector<double> a_copy = a;  // distinct storage, same bits
    const auto squared = conv::convolve_full(a, a, {conv::Policy::Path::fft});
    const auto product =
        conv::convolve_full(a, a_copy, {conv::Policy::Path::fft});
    ASSERT_EQ(squared.size(), product.size());
    const double tol = 1e-12 * static_cast<double>(n);
    for (std::size_t i = 0; i < squared.size(); ++i)
      EXPECT_NEAR(squared[i], product[i], tol) << "n=" << n << " i=" << i;
    const auto ref = conv::convolve_full_direct(a, a);
    const double dtol = 1e-11 * static_cast<double>(n);
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(squared[i], ref[i], dtol) << "n=" << n << " i=" << i;
  }
}

TEST(Convolution, SpectralOverloadsMatchTimeDomainKernels) {
  conv::Workspace ws;
  // correlate_valid against a precomputed (reversed) kernel spectrum.
  {
    const auto in = random_vec(3000, 81);
    const auto kernel = random_vec(500, 82);
    const std::size_t n_out = in.size() - kernel.size() + 1;
    ASSERT_TRUE(conv::correlate_prefers_fft(n_out, kernel.size(), {}));
    const std::size_t n = conv::correlate_fft_size(n_out, kernel.size());
    const auto kspec = conv::kernel_spectrum(kernel, n, /*reversed=*/true, ws);
    std::vector<double> want(n_out), got(n_out);
    conv::correlate_valid(in, kernel, want, {conv::Policy::Path::fft});
    conv::correlate_valid(in, kspec, got, ws);
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_EQ(got[i], want[i]) << "i=" << i;  // bit-identical by design
  }
  // convolve_full against a precomputed (forward) kernel spectrum.
  {
    const auto a = random_vec(700, 83);
    const auto b = random_vec(300, 84);
    const std::size_t full = a.size() + b.size() - 1;
    const auto bspec = conv::kernel_spectrum(b, amopt::next_pow2(full),
                                             /*reversed=*/false, ws);
    std::vector<double> got(full);
    conv::convolve_full(a, bspec, got, ws);
    const auto want = conv::convolve_full(a, b, {conv::Policy::Path::fft});
    for (std::size_t i = 0; i < full; ++i)
      ASSERT_EQ(got[i], want[i]) << "i=" << i;
  }
  // convolve_many against a shared precomputed spectrum.
  {
    std::vector<std::vector<double>> storage;
    for (std::size_t i = 0; i < 4; ++i)
      storage.push_back(random_vec(200 + 100 * i, static_cast<unsigned>(90 + i)));
    std::vector<std::span<const double>> inputs(storage.begin(), storage.end());
    const auto kernel = random_vec(256, 95);
    const std::size_t n = amopt::next_pow2(storage.back().size() + kernel.size() - 1);
    const auto kspec = conv::kernel_spectrum(kernel, n, /*reversed=*/false, ws);
    std::vector<std::vector<double>> got(4), want(4);
    conv::convolve_many(inputs, kspec, got, ws);
    conv::convolve_many(inputs, kernel, want, ws, {conv::Policy::Path::fft});
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_EQ(got[i].size(), want[i].size());
      for (std::size_t j = 0; j < got[i].size(); ++j)
        ASSERT_EQ(got[i][j], want[i][j]) << "item " << i << " j=" << j;
    }
  }
}

TEST(Convolution, CorrelatePrefersFftMirrorsPolicyCrossover) {
  // Tiny products stay direct; large ones go FFT; forced policies obeyed;
  // the packed pipeline never reports a shareable spectrum.
  EXPECT_FALSE(conv::correlate_prefers_fft(8, 4, {}));
  EXPECT_TRUE(conv::correlate_prefers_fft(4096, 513, {}));
  EXPECT_TRUE(
      conv::correlate_prefers_fft(8, 4, {conv::Policy::Path::fft}));
  EXPECT_FALSE(
      conv::correlate_prefers_fft(4096, 513, {conv::Policy::Path::direct}));
  EXPECT_FALSE(
      conv::correlate_prefers_fft(4096, 513, {conv::Policy::Path::fft_packed}));
  EXPECT_FALSE(conv::correlate_prefers_fft(0, 4, {}));
  // The size-aware crossover: a wide row under a short kernel (the top of
  // an FDM descent) beats the FFT with the direct SIMD sweep even though
  // its k*n product is far past the flat threshold, while a balanced
  // out ~ klen window of the same row width stays spectral.
  EXPECT_FALSE(conv::correlate_prefers_fft(9000, 65, {}));
  EXPECT_TRUE(conv::correlate_prefers_fft(9000, 4097, {}));
  // Overlap-save minimal sizing: the transform covers only the trimmed
  // INPUT (out + klen - 1), not its full linear convolution — half the
  // transform wherever the old out + 2*(klen - 1) rule crossed a power of
  // two that the input itself does not.
  EXPECT_EQ(conv::correlate_fft_size(4096, 513), 8192u);   // input 4608
  EXPECT_EQ(conv::correlate_fft_size(3584, 513), 4096u);   // was 8192 pre-PR-10
  EXPECT_EQ(conv::correlate_fft_size(2048, 2049), 4096u);  // was 8192 pre-PR-10
  EXPECT_EQ(conv::correlate_fft_size(1, 1), 1u);
}

TEST(Convolution, MinimalPaddingWindowIsAliasFree) {
  // The re-baselined sizing lets cyclic wraparound corrupt full-convolution
  // bins below the correlation's read window. Check against the direct
  // oracle at sizes where the cyclic length is strictly smaller than the
  // full linear length, on both FFT pipelines and through a spectrum built
  // at exactly correlate_fft_size — and confirm an over-padded spectrum
  // (the pre-PR-10 size) agrees to round-off, not bits (different n,
  // different rounding).
  conv::Workspace ws;
  for (const auto& [n_out, n_k] :
       {std::pair<std::size_t, std::size_t>{3584, 513},
        {2048, 2049},
        {1000, 1000}}) {
    const auto in = random_vec(n_out + n_k - 1, 11);
    const auto kernel = random_vec(n_k, 12);
    const std::size_t n_min = conv::correlate_fft_size(n_out, n_k);
    ASSERT_LT(n_min, amopt::next_pow2(n_out + 2 * (n_k - 1)))
        << "premise: these sizes actually shrink";
    std::vector<double> oracle(n_out), got(n_out);
    conv::correlate_valid_direct(in, kernel, oracle);
    double scale = 0.0;
    for (const double v : oracle) scale = std::max(scale, std::abs(v));
    const double tol = 1e-11 * std::max(scale, 1.0);

    conv::correlate_valid(in, kernel, got, ws, {conv::Policy::Path::fft});
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_NEAR(got[i], oracle[i], tol) << "fft i=" << i;
    conv::correlate_valid(in, kernel, got, ws,
                          {conv::Policy::Path::fft_packed});
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_NEAR(got[i], oracle[i], tol) << "packed i=" << i;

    const auto kspec = conv::kernel_spectrum(kernel, n_min, true, ws);
    conv::correlate_valid(in, kspec, got, ws);
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_NEAR(got[i], oracle[i], tol) << "spectral i=" << i;

    // Any larger power of two remains a valid spectrum size.
    const auto kspec_wide = conv::kernel_spectrum(kernel, 2 * n_min, true, ws);
    std::vector<double> wide(n_out);
    conv::correlate_valid(in, kspec_wide, wide, ws);
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_NEAR(wide[i], oracle[i], tol) << "over-padded i=" << i;
  }
}

TEST(Correlation, SplitOperandMatchesConcatenatedBitForBit) {
  // The solvers stage (red prefix, green tail) without materializing the
  // concatenation; on every FFT path the staged transform buffer is the
  // same bytes, so the result must be IDENTICAL at a fixed dispatch level.
  conv::Workspace ws;
  for (const auto path :
       {conv::Policy::Path::fft, conv::Policy::Path::fft_packed,
        conv::Policy::Path::automatic}) {
    for (const std::size_t n_tail : {0u, 1u, 2u, 7u}) {
      for (const std::size_t n_main : {40u, 700u, 4096u}) {
        const auto main = random_vec(n_main, 61);
        const auto tail = random_vec(n_tail, 62);
        std::vector<double> cat(main);
        cat.insert(cat.end(), tail.begin(), tail.end());
        const auto kernel = random_vec(n_main / 3 + n_tail + 1, 63);
        std::vector<double> out(cat.size() - kernel.size() + 1);
        std::vector<double> want(out.size());
        const conv::Policy policy{path};
        conv::correlate_valid(cat, kernel, want, ws, policy);
        conv::correlate_valid(main, tail, kernel, out, ws, policy);
        // Bit-identical on EVERY path: the FFT paths stage the same bytes
        // and the direct path materializes the concatenation precisely so
        // its sweep partition matches (FMA levels would otherwise diverge
        // in the last ulp on the tail-reading cells).
        for (std::size_t i = 0; i < out.size(); ++i)
          ASSERT_EQ(out[i], want[i])
              << "path=" << static_cast<int>(path) << " tail=" << n_tail
              << " i=" << i;
      }
    }
  }
}

TEST(Correlation, SplitOperandSpectralMatchesConcatenated) {
  conv::Workspace ws;
  const auto main = random_vec(3000, 71);
  const auto tail = random_vec(2, 72);
  const auto kernel = random_vec(1025, 73);
  std::vector<double> cat(main);
  cat.insert(cat.end(), tail.begin(), tail.end());
  std::vector<double> out(cat.size() - kernel.size() + 1);
  const std::size_t n = conv::correlate_fft_size(out.size(), kernel.size());
  const fft::RealSpectrum kspec =
      conv::kernel_spectrum(kernel, n, /*reversed=*/true, ws);
  std::vector<double> want(out.size());
  conv::correlate_valid(cat, kspec, want, ws);
  conv::correlate_valid(main, tail, kspec, out, ws);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], want[i]) << "i=" << i;  // same staged bytes, same bits
}

TEST(Correlation, SplitOperandMatchesDirectOracle) {
  // Against the reference oracle at 1e-12, covering windows that read
  // several tail cells.
  conv::Workspace ws;
  const auto main = random_vec(300, 81);
  const auto tail = random_vec(4, 82);
  const auto kernel = random_vec(32, 83);
  std::vector<double> cat(main);
  cat.insert(cat.end(), tail.begin(), tail.end());
  std::vector<double> want(cat.size() - kernel.size() + 1);
  conv::correlate_valid_direct(cat, kernel, want);
  for (const auto path : {conv::Policy::Path::direct, conv::Policy::Path::fft}) {
    std::vector<double> out(want.size());
    conv::correlate_valid(main, tail, kernel, out, ws, {path});
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_NEAR(out[i], want[i], 1e-12)
          << "path=" << static_cast<int>(path) << " i=" << i;
  }
}

TEST(Convolution, CommutesUnderFft) {
  const auto a = random_vec(100, 41);
  const auto b = random_vec(37, 43);
  const auto ab = conv::convolve_full(a, b, {conv::Policy::Path::fft});
  const auto ba = conv::convolve_full(b, a, {conv::Policy::Path::fft});
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i) EXPECT_NEAR(ab[i], ba[i], 1e-10);
}

}  // namespace
