// pricing::price_batch must reproduce the scalar price() call bit for bit
// for every supported combination — the shared kernel cache and the OpenMP
// fan-out are pure work-sharing, not approximations.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "amopt/pricing/api.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

[[nodiscard]] std::vector<OptionSpec> strike_ladder() {
  std::vector<OptionSpec> chain;
  const OptionSpec base = paper_spec();
  for (double k : {100.0, 110.0, 120.0, 125.0, 130.0, 135.0, 150.0}) {
    OptionSpec s = base;
    s.K = k;
    chain.push_back(s);
  }
  return chain;
}

void expect_bit_identical(const std::vector<OptionSpec>& chain, std::int64_t T,
                          Model model, Right right, Style style,
                          Engine engine) {
  const std::vector<double> got =
      price_batch(chain, T, model, right, style, engine);
  ASSERT_EQ(got.size(), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const double ref = price(chain[i], T, model, right, style, engine);
    EXPECT_EQ(got[i], ref) << to_string(model) << "/" << to_string(right)
                           << "/" << to_string(style) << "/"
                           << to_string(engine) << " item " << i;
  }
}

TEST(Batch, BopmAmericanCallFft) {
  expect_bit_identical(strike_ladder(), 512, Model::bopm, Right::call,
                       Style::american, Engine::fft);
}

TEST(Batch, BopmAmericanPutFft) {
  expect_bit_identical(strike_ladder(), 512, Model::bopm, Right::put,
                       Style::american, Engine::fft);
}

TEST(Batch, BopmEuropeanBothRights) {
  expect_bit_identical(strike_ladder(), 400, Model::bopm, Right::call,
                       Style::european, Engine::fft);
  expect_bit_identical(strike_ladder(), 400, Model::bopm, Right::put,
                       Style::european, Engine::fft);
}

TEST(Batch, TopmAmericanCallFft) {
  expect_bit_identical(strike_ladder(), 256, Model::topm, Right::call,
                       Style::american, Engine::fft);
}

TEST(Batch, BsmPutSharesKernelCacheSincePr2) {
  // The FDM solver now takes an injected KernelCache (the ROADMAP follow-up
  // from PR 1), so a BSM ladder batches through one shared tap group — and
  // the result must STILL be bit-identical to the scalar calls.
  expect_bit_identical(strike_ladder(), 256, Model::bsm, Right::put,
                       Style::american, Engine::fft);
}

TEST(Batch, NonFftEnginesFallBackPerOption) {
  expect_bit_identical(strike_ladder(), 200, Model::bopm, Right::call,
                       Style::american, Engine::quantlib);
  expect_bit_identical(strike_ladder(), 200, Model::bopm, Right::call,
                       Style::american, Engine::vanilla);
}

TEST(Batch, MixedTapsSplitIntoGroups) {
  // Items with different vol / expiry derive different taps and therefore
  // different kernel caches; results must still match scalar calls exactly.
  std::vector<OptionSpec> chain = strike_ladder();
  OptionSpec other = paper_spec();
  other.V = 0.35;
  chain.push_back(other);
  other.expiry_years = 0.5;
  chain.push_back(other);
  expect_bit_identical(chain, 512, Model::bopm, Right::call, Style::american,
                       Engine::fft);
}

TEST(Batch, EmptyChainGivesEmptyResult) {
  EXPECT_TRUE(
      price_batch({}, 100, Model::bopm, Right::call).empty());
}

TEST(Batch, UnsupportedCombinationThrows) {
  // The legacy facade keeps its throwing contract even though it now wraps
  // Pricer::price_many (which itself reports per-item Status instead).
  EXPECT_THROW((void)price_batch(strike_ladder(), 100, Model::bsm,
                                 Right::call),
               std::invalid_argument);
  EXPECT_THROW((void)price_batch(strike_ladder(), 100, Model::topm,
                                 Right::call, Style::american,
                                 Engine::quantlib),
               std::invalid_argument);
}

}  // namespace
