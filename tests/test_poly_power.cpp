// Tests for S3: the three kernel-power engines agree with each other and
// satisfy the structural identities the pricers rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "amopt/poly/poly_power.hpp"

namespace {

using namespace amopt;

void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << "i=" << i;
}

TEST(PolyPower, ZeroPowerIsOne) {
  const std::vector<double> taps{0.3, 0.4, 0.2};
  const auto k = poly::power(taps, 0);
  ASSERT_EQ(k.size(), 1u);
  EXPECT_DOUBLE_EQ(k[0], 1.0);
}

TEST(PolyPower, FirstPowerIsTaps) {
  const std::vector<double> taps{0.25, 0.5, 0.125};
  expect_close(poly::power_fft(taps, 1), taps, 0.0);
}

class PolyPowerCross : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolyPowerCross, BinomialMatchesNaiveAndFft) {
  const std::uint64_t h = GetParam();
  const double a = 0.493, b = 0.502;
  const auto closed = poly::power_binomial(a, b, h);
  const auto fft = poly::power_fft(std::vector<double>{a, b}, h);
  expect_close(closed, fft, 1e-12);
  if (h <= 64) {
    const auto naive = poly::power_naive(std::vector<double>{a, b}, h);
    expect_close(closed, naive, 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, PolyPowerCross,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 33, 64, 100,
                                           255, 1024, 5000));

class PolyPowerTrinomial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolyPowerTrinomial, FftMatchesRecurrenceAndNaive) {
  const std::uint64_t h = GetParam();
  const std::vector<double> taps{0.24, 0.50, 0.25};
  const auto fft = poly::power_fft(taps, h);
  const auto rec = poly::power_recurrence(taps, h);
  ASSERT_EQ(fft.size(), 2 * h + 1);
  expect_close(fft, rec, 1e-11);
  if (h <= 32) expect_close(fft, poly::power_naive(taps, h), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Heights, PolyPowerTrinomial,
                         ::testing::Values(1, 2, 5, 16, 61, 128, 400));

TEST(PolyPower, KernelMassIsPowerOfTapSum) {
  // sum(taps^h) == (sum taps)^h — the discounted probability mass identity
  // the pricers rely on (h steps of discounting).
  const std::vector<double> taps{0.48, 0.51};
  for (std::uint64_t h : {3u, 64u, 1000u, 100000u}) {
    const auto k = poly::power(taps, h);
    const double mass = std::accumulate(k.begin(), k.end(), 0.0);
    EXPECT_NEAR(mass, std::pow(0.99, static_cast<double>(h)),
                1e-10 * std::pow(0.99, static_cast<double>(h)) * h)
        << "h=" << h;
  }
}

TEST(PolyPower, NonNegativeForProbabilityTaps) {
  const std::vector<double> taps{0.2, 0.5, 0.29};
  const auto k = poly::power_fft(taps, 256);
  for (double x : k) EXPECT_GE(x, -1e-15);
}

TEST(PolyPower, LargeHeightBinomialDoesNotUnderflowNearPeak) {
  // At h = 2^20 the tail coefficients underflow (correctly), but the values
  // around the mean m ~ h*b/(a+b) must stay finite and positive.
  const std::uint64_t h = 1u << 20;
  const auto k = poly::power_binomial(0.5, 0.5, h);
  const std::size_t mid = h / 2;
  EXPECT_GT(k[mid], 0.0);
  EXPECT_TRUE(std::isfinite(k[mid]));
  // Peak of Binomial(h, 1/2) ~ sqrt(2/(pi h)).
  EXPECT_NEAR(k[mid], std::sqrt(2.0 / (3.14159265358979 * h)), 1e-6);
}

TEST(PolyPower, DegenerateTaps) {
  const auto only_a = poly::power_binomial(0.5, 0.0, 4);
  EXPECT_DOUBLE_EQ(only_a[0], 0.0625);
  for (std::size_t i = 1; i < only_a.size(); ++i)
    EXPECT_DOUBLE_EQ(only_a[i], 0.0);
  const auto only_b = poly::power_binomial(0.0, 0.5, 4);
  EXPECT_DOUBLE_EQ(only_b[4], 0.0625);
  const auto single = poly::power(std::vector<double>{0.9}, 10);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_NEAR(single[0], std::pow(0.9, 10.0), 1e-15);
}

TEST(PolyPower, PowerAdditivity) {
  // taps^(h1+h2) == taps^h1 (x) taps^h2 — exactly the property that lets the
  // trapezoid solver split heights arbitrarily.
  const std::vector<double> taps{0.3, 0.45, 0.22};
  const auto k5 = poly::power_fft(taps, 5);
  const auto k8 = poly::power_fft(taps, 8);
  const auto k13 = poly::power_fft(taps, 13);
  // convolve k5 and k8 directly
  std::vector<double> prod(k5.size() + k8.size() - 1, 0.0);
  for (std::size_t i = 0; i < k5.size(); ++i)
    for (std::size_t j = 0; j < k8.size(); ++j) prod[i + j] += k5[i] * k8[j];
  expect_close(prod, k13, 1e-12);
}

}  // namespace
