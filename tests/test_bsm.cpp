// BSM explicit-FDM tests: the paper's fft-bsm vs the vanilla projection
// loop, convergence of the European limit to the closed form, domination
// properties, and cross-model agreement of the American put.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

struct GridCase {
  double S, K, R, V, Y;
  std::int64_t T;
};

OptionSpec to_spec(const GridCase& c) {
  OptionSpec s;
  s.S = c.S;
  s.K = c.K;
  s.R = c.R;
  s.V = c.V;
  s.Y = c.Y;
  return s;
}

class BsmGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BsmGrid, FftPutMatchesVanilla) {
  const GridCase c = GetParam();
  const OptionSpec spec = to_spec(c);
  const double v = bsm::american_put_vanilla(spec, c.T);
  const double f = bsm::american_put_fft(spec, c.T);
  EXPECT_NEAR(f, v, 1e-8 * std::max(1.0, std::abs(v)));
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, BsmGrid,
    ::testing::Values(
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 16},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 100},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 1000},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 2048},
        // no dividend (the paper's literal Eq. 5 setting)
        GridCase{127.62, 130, 0.00163, 0.2, 0.0, 1000},
        GridCase{100, 100, 0.05, 0.3, 0.0, 777},
        // rate above yield
        GridCase{100, 110, 0.08, 0.3, 0.01, 512},
        // deep in/out of the money
        GridCase{60, 100, 0.04, 0.25, 0.0, 512},
        GridCase{160, 100, 0.04, 0.25, 0.0, 512},
        // high/low vol
        GridCase{100, 100, 0.03, 0.7, 0.02, 512},
        GridCase{100, 100, 0.03, 0.08, 0.02, 512}));

TEST(BsmEuropean, ConvergesToClosedForm) {
  for (double Y : {0.0, 0.0163}) {
    OptionSpec spec = paper_spec();
    spec.Y = Y;
    const double exact = bs::european_put(spec);
    double prev_err = 1e9;
    for (std::int64_t T : {256L, 1024L, 4096L}) {
      const double err = std::abs(bsm::european_put_fdm(spec, T) - exact);
      EXPECT_LT(err, prev_err) << "T=" << T << " Y=" << Y;
      prev_err = err;
    }
    EXPECT_LT(prev_err, 2e-3) << "Y=" << Y;
  }
}

TEST(BsmAmerican, DominatesEuropeanAndIntrinsic) {
  OptionSpec spec = paper_spec();
  spec.Y = 0.0;  // meaningful early-exercise premium needs R to dominate
  spec.R = 0.05;
  const std::int64_t T = 2048;
  const double amer = bsm::american_put_fft(spec, T);
  const double eur = bsm::european_put_fdm(spec, T);
  EXPECT_GT(amer, eur);  // strictly: R > 0 makes early exercise valuable
  EXPECT_GE(amer, std::max(0.0, spec.K - spec.S));
  EXPECT_LE(amer, spec.K);
}

TEST(BsmAmerican, AgreesWithLatticeModels) {
  // Same continuum problem, independent discretizations: BOPM lattice vs
  // explicit FDM must agree to discretization accuracy.
  const OptionSpec spec = paper_spec();
  const double fdm = bsm::american_put_fft(spec, 8192);
  const double lattice = bopm::american_put_fft_direct(spec, 8192);
  EXPECT_NEAR(fdm, lattice, 5e-3);
}

TEST(BsmAmerican, ZeroRateEqualsEuropean) {
  OptionSpec spec = paper_spec();
  spec.R = 0.0;
  spec.Y = 0.0;
  const std::int64_t T = 1024;
  // Exact ties (R = 0 makes continuation == payoff to first order) leave
  // only FP-level noise between the two paths.
  EXPECT_NEAR(bsm::american_put_fft(spec, T), bsm::european_put_fdm(spec, T),
              1e-7);
}

TEST(BsmBoundary, MonotoneDecreasing) {
  // Theorem 4.2/4.3: the exercise boundary k_n never increases, and after
  // the initial jump rows it drops at most one cell per step.
  const OptionSpec spec = paper_spec();
  const auto f = bsm::exercise_boundary_vanilla(spec, 600);
  for (std::size_t n = 1; n < f.size(); ++n)
    EXPECT_LE(f[n], f[n - 1]) << "n=" << n;
  for (std::size_t n = 3; n < f.size(); ++n)
    EXPECT_GE(f[n], f[n - 1] - 1) << "n=" << n;
}

TEST(BsmBoundary, StartsAtPayoffKink) {
  const OptionSpec spec = paper_spec();
  const auto f = bsm::exercise_boundary_vanilla(spec, 100);
  EXPECT_EQ(f[0], 0);
}

TEST(BsmLayout, ReadCellsCoverTarget) {
  const OptionSpec spec = paper_spec();
  const auto prm = derive_bsm(spec, 512);
  const auto lay = bsm::make_layout(prm);
  EXPECT_GE(lay.theta, 0.0);
  EXPECT_LT(lay.theta, 1.0);
  const double s_back =
      (static_cast<double>(lay.k_read) + lay.theta) * prm.ds;
  EXPECT_NEAR(s_back, prm.s_target, 1e-12);
  EXPECT_GE(lay.kr0 - prm.T, lay.k_read + 1);
}

TEST(BsmVanilla, SerialAndParallelAgree) {
  const OptionSpec spec = paper_spec();
  EXPECT_NEAR(bsm::american_put_vanilla(spec, 512),
              bsm::american_put_vanilla_parallel(spec, 512), 1e-12);
}

}  // namespace
